"""Deterministic discrete-event simulator for message-passing programs.

Each rank is a generator that yields operation objects created through its
:class:`RankCtx` (``send`` / ``recv`` / ``compute``).  The scheduler always
advances the runnable rank with the smallest virtual clock, so message
availability tracks causal order closely; ``recv(ANY, ANY)`` picks the
matching message with the earliest arrival time, mirroring
``MPI_Recv(MPI_ANY_SOURCE)`` in the paper's Algorithm 3 while staying
deterministic.

Sends are eager and buffered (the solvers use ``MPI_Isend``): the sender is
busy only for the network model's injection overhead, and the payload is
copied so later mutation by the sender cannot race the receiver.

Every operation carries a ``(phase, category)`` label; per-rank time is
accumulated per label, which is how the paper's Z-Comm / XY-Comm /
FP-Operation breakdowns (Figs. 5-6) and per-rank load-balance plots
(Figs. 7-8) are produced.

Fault tolerance (see :mod:`repro.comm.faults` and ``docs/FAULTS.md``): a
seeded :class:`~repro.comm.faults.FaultPlan` passed as ``faults=`` injects
drops, duplicates, delay spikes, reorderings, bit corruption, rank crashes
and slowdowns; ``checksums=True`` verifies payload integrity on delivery;
``reliable=True`` runs every message under an ack/retransmit envelope; and
``ctx.recv(timeout=...)`` plus the ``watchdog_events`` stall detector turn
would-be hangs into typed, catchable errors.  All of these default off, in
which case the simulation is bit-identical to the lossless runtime.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterable

import numpy as np

from repro.comm.faults import (
    ChecksumError,
    CommFaultError,
    FaultEvent,
    FaultPlan,
    RecvTimeout,
    ReliableTransport,
    StallError,
    corrupt_payload,
    payload_checksum,
)


class _AnyType:
    """Singleton wildcard for recv source/tag matching."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ANY"


ANY = _AnyType()


class DeadlockError(RuntimeError):
    """All live ranks are blocked on receives with no matching messages."""


class RMAError(RuntimeError):
    """A one-sided operation was used incorrectly: a window key read before
    any put to it was applied, or an RMA op issued under a configuration
    that does not support one-sided semantics (fault injection, reliable
    transport, tape recording)."""


class RMAConflictError(RMAError):
    """Opt-in (``Simulator(rma_strict=True)``): two unordered accesses to
    the same window key overlapped — a second put raced an in-flight or
    same-epoch write from another origin, or a local read raced an
    in-flight put.  Which value the window holds would be a scheduling
    accident; the static certifier (:mod:`repro.analyze.rma`) proves the
    absence of such conflicts from the schedule alone.
    """

    def __init__(self, rank: int, dst: int, key: Any, other: int,
                 what: str = "put"):
        super().__init__(
            f"RMA conflict: rank {rank} {what} to window {dst} key {key!r} "
            f"overlaps an unordered write from rank {other}; separate the "
            f"accesses with a flush/fence epoch")
        self.rank = rank
        self.dst = dst
        self.key = key
        self.other = other


class AmbiguousRecvError(RuntimeError):
    """Opt-in (``Simulator(strict_match=True)``): a wildcard receive was
    about to complete while queued messages from two or more distinct
    senders satisfied its spec, so which one it matches is a scheduling
    accident.

    This per-delivery check is sound but coarse: the static analyzer
    (:mod:`repro.analyze`) refines it by proving receive *loops*
    set-deterministic — every feasible send is matched by some receive of
    the same loop, so the delivered set (and any canonical-order
    accumulation over it) is independent of match order.
    """

    def __init__(self, rank: int, tag: Any, srcs: list[int]):
        super().__init__(
            f"ambiguous wildcard recv on rank {rank} (tag spec {tag!r}): "
            f"queued messages from ranks {srcs} all match; which is "
            f"delivered first is a scheduling accident")
        self.rank = rank
        self.tag = tag
        self.srcs = srcs


@dataclass
class _Message:
    arrival: float
    seq: int
    src: int
    tag: Hashable
    payload: Any
    nbytes: int
    checksum: int | None = None

    def __lt__(self, other: "_Message") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


@dataclass
class _SendOp:
    dst: int
    payload: Any
    tag: Hashable
    nbytes: int
    category: str


@dataclass
class _RecvOp:
    src: Any
    tag: Any
    category: str
    timeout: float | None = None


@dataclass
class _ComputeOp:
    seconds: float
    category: str
    flops: float = 0.0   # metrics-only annotation; never affects the clock
    nbytes: float = 0.0  # memory traffic of the op; annotation like flops


@dataclass
class _PutOp:
    dst: int
    key: Hashable
    payload: Any
    nbytes: int
    category: str


@dataclass
class _FlushOp:
    dst: int | None      # None flushes this origin's writes to every target
    category: str


@dataclass
class _FenceOp:
    tag: Hashable
    category: str


@dataclass
class _ReadOp:
    key: Hashable
    category: str


@dataclass(eq=False)
class _PendingWrite:
    """One issued-but-unapplied put (eq=False: identity, payloads are
    arrays)."""

    arrival: float
    seq: int
    origin: int
    dst: int
    key: Hashable
    payload: Any
    nbytes: int


def _payload_nbytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, np.generic):
        return payload.nbytes  # scalar numpy value: its itemsize
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload) + 16
    if isinstance(payload, dict):
        return sum(_payload_nbytes(k) + _payload_nbytes(v)
                   for k, v in payload.items()) + 16
    return 32  # control message


def _copy_payload(payload: Any) -> Any:
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    if isinstance(payload, dict):
        return {k: _copy_payload(v) for k, v in payload.items()}
    return payload


class _LabelScope:
    """Context manager restoring a RankCtx label attribute on exit."""

    def __init__(self, ctx: "RankCtx", attr: str, value: str):
        self._ctx = ctx
        self._attr = attr
        self._value = value
        self._saved = ""

    def __enter__(self):
        self._saved = getattr(self._ctx, self._attr)
        setattr(self._ctx, self._attr, self._value)
        return self._ctx

    def __exit__(self, *exc):
        setattr(self._ctx, self._attr, self._saved)
        return False


class RankCtx:
    """Per-rank handle: build ops to ``yield`` and accumulate timing."""

    def __init__(self, rank: int, nranks: int, machine):
        self.rank = rank
        self.nranks = nranks
        self.machine = machine
        self.clock = 0.0
        self.phase = ""
        self.sync = ""
        self.times: dict[tuple[str, str], float] = {}
        self.sent_msgs: dict[tuple[str, str], int] = {}
        self.sent_bytes: dict[tuple[str, str], float] = {}
        self.marks: dict[str, float] = {}
        # Tape recorder hook (repro.replay); None outside recording runs.
        self._recorder = None

    # -- op builders (use as `yield ctx.send(...)`) -------------------------

    def send(self, dst: int, payload: Any, tag: Hashable = None,
             nbytes: int | None = None, category: str = "comm") -> _SendOp:
        """Eager buffered send of ``payload`` to rank ``dst``."""
        if not (0 <= dst < self.nranks):
            raise ValueError(f"send to invalid rank {dst}")
        if nbytes is None:
            nbytes = _payload_nbytes(payload)
        return _SendOp(dst, payload, tag, nbytes, category)

    def recv(self, src: Any = ANY, tag: Any = ANY,
             category: str = "comm", timeout: float | None = None) -> _RecvOp:
        """Blocking receive; yields ``(src, tag, payload)``.

        ``tag`` may be ``ANY``, an exact value, or a predicate
        ``callable(tag) -> bool`` (used to scope phases of a protocol).

        ``timeout`` (virtual seconds) bounds the wait: if no matching
        message can arrive by then, :class:`~repro.comm.faults.RecvTimeout`
        is raised at the yield point (catchable; uncaught it propagates out
        of the simulation).
        """
        if src is not ANY:
            if not isinstance(src, (int, np.integer)):
                raise ValueError(
                    f"recv src must be a rank index or ANY, got {src!r}")
            if not (0 <= src < self.nranks):
                raise ValueError(
                    f"recv from invalid rank {src} (nranks={self.nranks}); "
                    f"this wait could never be satisfied")
        if timeout is not None and timeout <= 0:
            raise ValueError("recv timeout must be > 0")
        return _RecvOp(src, tag, category, timeout)

    def compute(self, seconds: float, category: str = "fp",
                flops: float = 0.0, nbytes: float = 0.0) -> _ComputeOp:
        """Advance the local clock by ``seconds`` of work.

        ``flops`` and ``nbytes`` are metrics-only annotations (recorded
        when a :class:`~repro.obs.metrics.MetricsRegistry` is attached,
        and folded into static schedules by :mod:`repro.analyze`); they
        never influence the virtual clock.
        """
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        return _ComputeOp(seconds, category, flops, nbytes)

    def put(self, dst: int, key: Hashable, payload: Any,
            nbytes: int | None = None, category: str = "comm") -> _PutOp:
        """One-sided write of ``payload`` into rank ``dst``'s window under
        ``key``.

        Charged exactly like an eager send (injection overhead locally, α-β
        latency in flight), but there is no matching receive: the write is
        applied to the target's window at the origin's next
        :meth:`flush`/:meth:`fence`, and the target observes it with
        :meth:`read`.  Overlapping unordered writes to one key are
        undefined; ``Simulator(rma_strict=True)`` detects them dynamically
        and :mod:`repro.analyze.rma` proves their absence statically.
        """
        if not (0 <= dst < self.nranks):
            raise ValueError(f"put to invalid rank {dst}")
        hash(key)   # window keys must be hashable, like message tags
        if nbytes is None:
            nbytes = _payload_nbytes(payload)
        return _PutOp(dst, key, payload, nbytes, category)

    def flush(self, dst: int | None = None,
              category: str = "comm") -> _FlushOp:
        """Complete this rank's outstanding puts to ``dst`` (all targets
        when ``None``): blocks until their payloads have landed and applies
        them to the target windows."""
        if dst is not None and not (0 <= dst < self.nranks):
            raise ValueError(f"flush of invalid rank {dst}")
        return _FlushOp(dst, category)

    def fence(self, tag: Hashable = None,
              category: str = "comm") -> _FenceOp:
        """Epoch boundary: collective barrier that completes every rank's
        outstanding puts.  All live ranks must reach a fence for it to
        complete; afterwards every write issued before any rank's fence is
        visible to every :meth:`read`."""
        return _FenceOp(tag, category)

    def read(self, key: Hashable, category: str = "comm") -> _ReadOp:
        """Local, zero-cost read of this rank's own window; yields the
        payload most recently applied under ``key``.  Reading a key no
        flush/fence has applied yet raises :class:`RMAError`."""
        hash(key)
        return _ReadOp(key, category)

    def gemm(self, m: int, n: int, k: int, category: str = "fp") -> _ComputeOp:
        """Convenience: a dense m×k @ k×n on this rank's CPU model."""
        from repro.comm.costmodel import gemm_bytes, gemm_flops

        fl = gemm_flops(m, n, k)
        nb = gemm_bytes(m, n, k)
        t = self.machine.cpu.op_time(fl, nb)
        return _ComputeOp(t, category, fl, nb)

    # -- bookkeeping ---------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def set_sync(self, sync: str) -> None:
        """Name the inter-grid synchronization point subsequent messages
        belong to ("" = none); purely an observability label."""
        self.sync = sync

    def phase_scope(self, phase: str) -> _LabelScope:
        """``with ctx.phase_scope("l"): ...`` — scoped :meth:`set_phase`."""
        return _LabelScope(self, "phase", phase)

    def sync_scope(self, sync: str) -> _LabelScope:
        """``with ctx.sync_scope("allreduce"): ...`` — scoped sync label."""
        return _LabelScope(self, "sync", sync)

    def mark(self, name: str) -> None:
        """Record the current clock under ``name`` (phase boundaries)."""
        self.marks[name] = self.clock
        if self._recorder is not None:
            self._recorder.on_mark(self.rank, name)

    def _charge(self, category: str, seconds: float) -> None:
        key = (self.phase, category)
        self.times[key] = self.times.get(key, 0.0) + seconds

    def _charge_msg(self, category: str, nbytes: int) -> None:
        key = (self.phase, category)
        self.sent_msgs[key] = self.sent_msgs.get(key, 0) + 1
        self.sent_bytes[key] = self.sent_bytes.get(key, 0.0) + nbytes


@dataclass
class TraceEvent:
    """One timeline entry (only recorded with ``Simulator(trace=True)``)."""

    rank: int
    t0: float
    t1: float
    kind: str        # "compute" | "send" | "wait" | "fault"
    phase: str
    category: str
    detail: Any = None  # dst rank for sends, src for waits, note for faults


@dataclass(frozen=True)
class UnconsumedMessage:
    """A message still sitting in a mailbox when its rank exited.

    In a fault-free run every send must be received — a leftover message
    means some rank forgot a ``recv`` (a silent protocol leak the
    invariant layer in :mod:`repro.check.invariants` flags).  Under
    injected faults, duplicates and deliveries to crashed ranks leave
    leftovers legitimately.
    """

    dst: int
    src: int
    tag: Hashable
    arrival: float
    nbytes: int


@dataclass(frozen=True)
class UnappliedPut:
    """A one-sided write issued but never completed by a flush/fence.

    Like :class:`UnconsumedMessage` for puts: in a fault-free run every
    put must be applied before its origin exits — a leftover means the
    program forgot a flush/fence (flagged by
    :mod:`repro.check.invariants`).
    """

    origin: int
    dst: int
    key: Hashable
    nbytes: int


@dataclass
class SimResult:
    """Outcome of a simulation: per-rank clocks, times, and return values."""

    clocks: np.ndarray
    times: list[dict[tuple[str, str], float]]
    sent_msgs: list[dict[tuple[str, str], int]]
    sent_bytes: list[dict[tuple[str, str], float]]
    marks: list[dict[str, float]]
    results: list[Any]
    trace: list[TraceEvent] | None = None
    fault_events: list[FaultEvent] | None = None
    crashed: list[int] = field(default_factory=list)
    unconsumed_msgs: list[UnconsumedMessage] = field(default_factory=list)
    # One-sided accounting (all zero/empty when no puts were issued):
    # total put payload bytes, bytes actually applied to windows, per-target
    # peak of issued-but-unapplied bytes (the live window-buffer footprint
    # the static resource certifier bounds), and leftover writes.
    rma_put_bytes: int = 0
    rma_applied_bytes: int = 0
    rma_peak_bytes: list[int] = field(default_factory=list)
    unapplied_puts: list[UnappliedPut] = field(default_factory=list)

    def trace_timeline(self, rank: int | None = None) -> list[TraceEvent]:
        """Chronological trace events (optionally for one rank)."""
        if self.trace is None:
            raise ValueError("run the Simulator with trace=True to record "
                             "a timeline")
        events = (self.trace if rank is None
                  else [e for e in self.trace if e.rank == rank])
        return sorted(events, key=lambda e: (e.t0, e.rank))

    @property
    def nranks(self) -> int:
        return len(self.clocks)

    @property
    def makespan(self) -> float:
        """Wall-clock of the parallel run: the slowest rank's finish time."""
        return float(self.clocks.max())

    def time_by(self, phase: str | None = None,
                category: str | None = None) -> np.ndarray:
        """Per-rank total seconds over labels matching the filters.

        ``phase``/``category`` of ``None`` match everything; otherwise exact
        string match.
        """
        out = np.zeros(self.nranks)
        for r, t in enumerate(self.times):
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    out[r] += v
        return out

    def msgs_by(self, phase: str | None = None,
                category: str | None = None) -> int:
        total = 0
        for t in self.sent_msgs:
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    total += v
        return total

    def bytes_by(self, phase: str | None = None,
                 category: str | None = None) -> float:
        total = 0.0
        for t in self.sent_bytes:
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    total += v
        return total

    def categories(self) -> set[tuple[str, str]]:
        out: set[tuple[str, str]] = set()
        for t in self.times:
            out.update(t)
        return out

    def fault_counts(self) -> dict[str, int]:
        """Injected/handled fault events by kind (empty without a plan)."""
        out: dict[str, int] = {}
        for ev in self.fault_events or ():
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out


_READY, _RECV, _DONE, _FENCE = 0, 1, 2, 3

# Sort marker so an expiring timeout loses ties against a real message with
# the same virtual timestamp.
_TIMEOUT = -1


class Simulator:
    """Run a message-passing program over ``nranks`` simulated ranks.

    Resilience knobs (all default off; see ``docs/FAULTS.md``):

    - ``faults``: a :class:`~repro.comm.faults.FaultPlan` injecting seeded,
      deterministic message/rank faults.
    - ``reliable``: ``True`` or a :class:`~repro.comm.faults.ReliableTransport`
      — ack/retransmit envelope around every message.
    - ``checksums``: stamp payload checksums at send, verify on delivery;
      mismatches raise :class:`~repro.comm.faults.ChecksumError` in the
      receiver.
    - ``watchdog_events``: raise :class:`~repro.comm.faults.StallError`
      after this many scheduler events without virtual-clock progress
      (livelock detector; a true deadlock still raises
      :class:`DeadlockError`).

    Observability (see ``docs/OBSERVABILITY.md``): ``metrics`` attaches a
    :class:`~repro.obs.metrics.MetricsRegistry` that records per-rank,
    per-phase counters and the send/recv dependency graph.  Recording is
    purely observational — virtual clocks are bit-identical with and
    without it.

    Checking (see ``docs/CHECKING.md``): ``invariants=True`` runs the
    :mod:`repro.check.invariants` simulation checks (clock/time
    conservation, no unconsumed mailbox messages in fault-free runs) on
    the result before returning it — also purely observational; a
    violation raises
    :class:`~repro.check.invariants.InvariantViolation`.
    """

    def __init__(self, nranks: int, machine, max_events: int = 50_000_000,
                 trace: bool = False, faults: FaultPlan | None = None,
                 reliable: bool | ReliableTransport = False,
                 checksums: bool = False,
                 watchdog_events: int | None = None,
                 metrics=None, invariants: bool = False,
                 strict_match: bool = False, rma_strict: bool = False,
                 recorder=None):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.machine = machine
        self.max_events = max_events
        self.trace = trace
        self.faults = faults
        self.metrics = metrics
        self.invariants = invariants
        if reliable is True:
            self.transport: ReliableTransport | None = ReliableTransport()
        elif reliable:
            self.transport = reliable
        else:
            self.transport = None
        self.checksums = checksums
        self.watchdog_events = watchdog_events
        self.strict_match = strict_match
        # Dynamic overlapping-write detection for one-sided ops: a put (or
        # local read) that races an unordered write to the same window key
        # raises RMAConflictError instead of silently picking a winner.
        self.rma_strict = rma_strict
        # Flat-op tape recorder (repro.replay.tape.TapeRecorder).  Only
        # meaningful on the fault-free, unreliable path — the replay fast
        # path's precondition; purely observational like ``metrics``.
        self.recorder = recorder

    def run(self, rank_fn: Callable[[RankCtx], Iterable]) -> SimResult:
        """Execute ``rank_fn(ctx)`` as a generator on every rank.

        ``rank_fn`` may also return a non-generator (rank does nothing).
        Returns a :class:`SimResult`; generator return values become
        ``results``.
        """
        n = self.nranks
        ctxs = [RankCtx(r, n, self.machine) for r in range(n)]
        gens: list[Any] = []
        for r in range(n):
            g = rank_fn(ctxs[r])
            gens.append(g if hasattr(g, "send") else iter(()))
        state = [_READY] * n
        pending_recv: list[_RecvOp | None] = [None] * n
        deadline: list[float | None] = [None] * n
        results: list[Any] = [None] * n
        mailbox: list[list[_Message]] = [[] for _ in range(n)]
        seq = 0
        events = 0
        started = [False] * n
        trace: list[TraceEvent] | None = [] if self.trace else None
        mreg = self.metrics
        if mreg is not None:
            mreg.start_run(n, self.machine)
        rec = self.recorder
        if rec is not None:
            for c in ctxs:
                c._recorder = rec
        fstate = self.faults.start_run() if self.faults is not None else None
        transport = self.transport
        net = self.machine.net
        rto = transport.base_rto(net) if transport is not None else 0.0
        crashed: list[int] = []
        # Watchdog bookkeeping: the event count at the last clock advance.
        wd = self.watchdog_events
        wd_progress = 0
        # One-sided state: per-rank windows, issued-but-unapplied writes,
        # fence parking, and the strict-mode same-epoch application map.
        windows: list[dict[Hashable, Any]] = [{} for _ in range(n)]
        rma_pending: list[_PendingWrite] = []
        pending_fence: list[_FenceOp | None] = [None] * n
        fence_t0 = [0.0] * n
        epoch_applied: dict[tuple[int, Hashable], int] = {}
        rma_live = [0] * n
        rma_peak = [0] * n
        rma_put_bytes = 0
        rma_applied_bytes = 0

        def apply_writes(writes: list[_PendingWrite]) -> None:
            """Land writes on their target windows in (arrival, seq) order —
            the completion order the network model defines."""
            nonlocal rma_applied_bytes
            for w in sorted(writes, key=lambda w: (w.arrival, w.seq)):
                windows[w.dst][w.key] = w.payload
                rma_live[w.dst] -= w.nbytes
                rma_applied_bytes += w.nbytes
                epoch_applied[(w.dst, w.key)] = w.origin

        def fault_trace(ev: FaultEvent, rank: int) -> None:
            if trace is not None:
                trace.append(TraceEvent(rank, ev.time, ev.time, "fault",
                                        ctxs[rank].phase, ev.kind,
                                        {"src": ev.src, "dst": ev.dst,
                                         "tag": ev.tag, "note": ev.note}))

        def match(r: int) -> int | None:
            """Index of the earliest-arriving matching message for rank r."""
            spec = pending_recv[r]
            best = None
            best_key = None
            for i, m in enumerate(mailbox[r]):
                if spec.src is not ANY and m.src != spec.src:
                    continue
                if spec.tag is not ANY:
                    if callable(spec.tag):
                        if not spec.tag(m.tag):
                            continue
                    elif m.tag != spec.tag:
                        continue
                key = (m.arrival, m.seq)
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best

        def mailbox_summary(r: int) -> str:
            """One rank's wait + pending-mailbox state, for error reports."""
            box = mailbox[r]
            spec = pending_recv[r]
            if state[r] == _FENCE:
                head = (f"rank {r} (phase={ctxs[r].phase!r}, at fence "
                        f"tag={pending_fence[r].tag!r} waiting for the "
                        f"other live ranks)")
            elif spec is not None:
                head = (f"rank {r} (phase={ctxs[r].phase!r}, "
                        f"waiting src={spec.src} tag={spec.tag})")
            else:
                head = f"rank {r} (phase={ctxs[r].phase!r}, runnable)"
            if not box:
                return head + " [mailbox empty]"
            tags = []
            for m in sorted(box):
                t = repr(m.tag)
                if t not in tags:
                    tags.append(t)
                if len(tags) == 3:
                    break
            earliest = min(m.arrival for m in box)
            return (head + f" [mailbox: {len(box)} pending, earliest arrival "
                    f"{earliest:.3e}s, tags {', '.join(tags)}]")

        def transmit(r: int, op: _SendOp, payload: Any, lat: float,
                     ctx: RankCtx):
            """Apply fault/transport policy to one send.

            Returns ``(deliver, arrival, decision)``; ``payload`` may be
            corrupted in place.  Only called when a fault plan or reliable
            transport is active.
            """
            if fstate is None:
                # Reliable transport without faults: nothing to retransmit.
                return True, ctx.clock + lat, None
            delay = 0.0
            attempt = 0
            while True:
                d = fstate.decide(r, op.dst, op.tag, ctx.clock)
                if d.extra_delay > 0.0:
                    delay += d.extra_delay
                    fault_trace(fstate.record(
                        "delay", ctx.clock, r, op.dst, op.tag,
                        f"+{d.extra_delay:.3e}s"), r)
                # Under the reliable envelope a corrupted copy is detected
                # by its checksum and retransmitted like a drop; without
                # checksums corruption is undetectable even when "reliable".
                failed = d.drop or (d.corrupt and transport is not None
                                    and self.checksums)
                if d.drop:
                    fault_trace(fstate.record(
                        "drop", ctx.clock, r, op.dst, op.tag,
                        f"attempt {attempt}"), r)
                if not failed:
                    if d.corrupt:
                        if corrupt_payload(payload, fstate.rng):
                            fault_trace(fstate.record(
                                "corrupt", ctx.clock, r, op.dst, op.tag,
                                "bit flip"), r)
                    if d.duplicate:
                        kind = ("dup-suppressed" if transport is not None
                                else "duplicate")
                        fault_trace(fstate.record(
                            kind, ctx.clock, r, op.dst, op.tag), r)
                        d.duplicate = transport is None
                    if d.reorder:
                        kind = ("reorder-suppressed" if transport is not None
                                else "reorder")
                        fault_trace(fstate.record(
                            kind, ctx.clock, r, op.dst, op.tag), r)
                        d.reorder = transport is None
                    return True, ctx.clock + delay + lat, d
                if transport is None:
                    return False, 0.0, None
                if attempt >= transport.max_retries:
                    fault_trace(fstate.record(
                        "lost", ctx.clock, r, op.dst, op.tag,
                        f"gave up after {attempt} retries"), r)
                    return False, 0.0, None
                delay += rto * (transport.backoff ** attempt)
                attempt += 1
                # The retransmitted copy is real traffic: count it.
                ctx._charge_msg(op.category, op.nbytes)
                if mreg is not None:
                    mreg.on_retransmit(r, ctx.phase, op.category, op.nbytes)
                fault_trace(fstate.record(
                    "retransmit", ctx.clock, r, op.dst, op.tag,
                    f"attempt {attempt}, backoff {delay:.3e}s"), r)

        def advance(r: int, value: Any, exc: BaseException | None = None) -> None:
            """Run rank r's generator until it blocks on a recv or finishes.

            ``exc`` (RecvTimeout/ChecksumError) is thrown into the
            generator at the yield point instead of sending a value.
            """
            nonlocal seq, events, wd_progress, rma_put_bytes
            ctx = ctxs[r]
            gen = gens[r]
            while True:
                events += 1
                if events > self.max_events:
                    raise RuntimeError("simulation exceeded max_events")
                if wd is not None and events - wd_progress > wd:
                    raise stall_error()
                if fstate is not None and fstate.crash_due(r, ctx.clock):
                    state[r] = _DONE
                    results[r] = None
                    crashed.append(r)
                    fault_trace(fstate.record("crash", ctx.clock, r, r, None,
                                              f"rank {r} crashed"), r)
                    gen.close()
                    return
                try:
                    if not started[r]:
                        started[r] = True
                        op = next(gen)
                    elif exc is not None:
                        op = gen.throw(exc)
                        exc = None
                    else:
                        op = gen.send(value)
                except StopIteration as stop:
                    state[r] = _DONE
                    results[r] = stop.value
                    return
                except Exception as e:
                    # Anything escaping a rank — uncaught RecvTimeout or
                    # ChecksumError, but also kernel sanity errors provoked
                    # by injected faults: attach scheduler diagnostics
                    # (sim_time, fault_events) on the way out.
                    raise finalize_error(e)
                value = None
                if isinstance(op, _SendOp):
                    t0 = ctx.clock
                    ctx.clock += net.send_overhead
                    ctx._charge(op.category, net.send_overhead)
                    ctx._charge_msg(op.category, op.nbytes)
                    if wd is not None:
                        wd_progress = events
                    same = self.machine.same_node(r, op.dst)
                    lat = net.latency(op.nbytes, same)
                    msg_seq = None
                    if fstate is None and transport is None:
                        heapq.heappush(
                            mailbox[op.dst],
                            _Message(ctx.clock + lat, seq, r, op.tag,
                                     _copy_payload(op.payload), op.nbytes))
                        msg_seq = seq
                        seq += 1
                        if rec is not None:
                            rec.on_send(r, msg_seq, op.nbytes, lat,
                                        ctx.phase, op.category)
                    else:
                        payload = _copy_payload(op.payload)
                        # Checksum is stamped over the *sent* data, before
                        # any in-flight corruption, so mismatches surface.
                        csum = (payload_checksum(payload)
                                if self.checksums else None)
                        deliver, arrival, d = transmit(r, op, payload, lat,
                                                       ctx)
                        if deliver:
                            heapq.heappush(
                                mailbox[op.dst],
                                _Message(arrival, seq, r, op.tag, payload,
                                         op.nbytes, csum))
                            msg_seq = seq
                            seq += 1
                            if d is not None and d.duplicate:
                                heapq.heappush(
                                    mailbox[op.dst],
                                    _Message(arrival + lat, seq, r, op.tag,
                                             _copy_payload(payload),
                                             op.nbytes, csum))
                                seq += 1
                            if d is not None and d.reorder:
                                self._apply_reorder(mailbox[op.dst], r)
                    if mreg is not None:
                        alpha = (net.alpha_intra if same
                                 else net.alpha_inter)
                        mreg.on_send(r, ctx.phase, ctx.sync, op.category,
                                     msg_seq, op.dst, op.nbytes, t0,
                                     ctx.clock, alpha, lat - alpha)
                    if trace is not None:
                        trace.append(TraceEvent(r, t0, ctx.clock, "send",
                                                ctx.phase, op.category,
                                                op.dst))
                elif isinstance(op, _ComputeOp):
                    t0 = ctx.clock
                    seconds = op.seconds
                    if fstate is not None:
                        scale = fstate.compute_scale(r, ctx.clock)
                        if scale != 1.0:
                            fault_trace(fstate.record(
                                "slowdown", ctx.clock, r, r, None,
                                f"x{scale:g}"), r)
                            seconds *= scale
                    ctx.clock += seconds
                    ctx._charge(op.category, seconds)
                    # Zero-second computes still create the (phase,
                    # category) label above, so the tape keeps them too.
                    if rec is not None:
                        rec.on_compute(r, seconds, ctx.phase, op.category)
                    if mreg is not None and seconds > 0:
                        mreg.on_compute(r, ctx.phase, op.category, t0,
                                        ctx.clock, op.flops)
                    if wd is not None and seconds > 0:
                        wd_progress = events
                    if trace is not None and seconds > 0:
                        trace.append(TraceEvent(r, t0, ctx.clock, "compute",
                                                ctx.phase, op.category))
                elif isinstance(op, _RecvOp):
                    state[r] = _RECV
                    pending_recv[r] = op
                    deadline[r] = (ctx.clock + op.timeout
                                   if op.timeout is not None else None)
                    return
                elif isinstance(op, _PutOp):
                    if (fstate is not None or transport is not None
                            or rec is not None):
                        raise finalize_error(RMAError(
                            f"rank {r} issued a one-sided put under fault "
                            f"injection / reliable transport / tape "
                            f"recording; RMA semantics are defined only on "
                            f"the lossless, unrecorded path"))
                    if self.rma_strict:
                        clash = next(
                            (w for w in rma_pending
                             if w.dst == op.dst and w.key == op.key
                             and w.origin != r), None)
                        prev = epoch_applied.get((op.dst, op.key))
                        if clash is not None:
                            raise finalize_error(RMAConflictError(
                                r, op.dst, op.key, clash.origin))
                        if prev is not None and prev != r:
                            raise finalize_error(RMAConflictError(
                                r, op.dst, op.key, prev))
                    t0 = ctx.clock
                    ctx.clock += net.send_overhead
                    ctx._charge(op.category, net.send_overhead)
                    ctx._charge_msg(op.category, op.nbytes)
                    if wd is not None:
                        wd_progress = events
                    same = self.machine.same_node(r, op.dst)
                    lat = net.latency(op.nbytes, same)
                    rma_pending.append(_PendingWrite(
                        ctx.clock + lat, seq, r, op.dst, op.key,
                        _copy_payload(op.payload), op.nbytes))
                    seq += 1
                    rma_put_bytes += op.nbytes
                    rma_live[op.dst] += op.nbytes
                    rma_peak[op.dst] = max(rma_peak[op.dst],
                                           rma_live[op.dst])
                    if mreg is not None:
                        alpha = (net.alpha_intra if same
                                 else net.alpha_inter)
                        mreg.on_send(r, ctx.phase, ctx.sync, op.category,
                                     None, op.dst, op.nbytes, t0,
                                     ctx.clock, alpha, lat - alpha)
                    if trace is not None:
                        trace.append(TraceEvent(r, t0, ctx.clock, "send",
                                                ctx.phase, op.category,
                                                op.dst))
                elif isinstance(op, _FlushOp):
                    t0 = ctx.clock
                    mine = [w for w in rma_pending
                            if w.origin == r
                            and (op.dst is None or w.dst == op.dst)]
                    if mine:
                        t_done = max(ctx.clock,
                                     max(w.arrival for w in mine))
                        wait = t_done - ctx.clock
                        ctx.clock = t_done
                        for w in mine:
                            rma_pending.remove(w)
                        apply_writes(mine)
                        if wait > 0:
                            ctx._charge(op.category, wait)
                            if wd is not None:
                                wd_progress = events
                            if mreg is not None:
                                mreg.on_wait(r, ctx.phase, ctx.sync,
                                             op.category, t0, t_done,
                                             ctx.clock, None, None)
                            if trace is not None:
                                trace.append(TraceEvent(
                                    r, t0, ctx.clock, "wait", ctx.phase,
                                    op.category, "flush"))
                elif isinstance(op, _FenceOp):
                    if (fstate is not None or transport is not None
                            or rec is not None):
                        raise finalize_error(RMAError(
                            f"rank {r} issued a one-sided fence under fault "
                            f"injection / reliable transport / tape "
                            f"recording; RMA semantics are defined only on "
                            f"the lossless, unrecorded path"))
                    state[r] = _FENCE
                    pending_fence[r] = op
                    fence_t0[r] = ctx.clock
                    return
                elif isinstance(op, _ReadOp):
                    if self.rma_strict:
                        clash = next(
                            (w for w in rma_pending
                             if w.dst == r and w.key == op.key), None)
                        if clash is not None:
                            raise finalize_error(RMAConflictError(
                                r, r, op.key, clash.origin, what="read"))
                    if op.key not in windows[r]:
                        raise finalize_error(RMAError(
                            f"rank {r} read window key {op.key!r} before "
                            f"any put to it was applied (missing "
                            f"flush/fence?)"))
                    value = windows[r][op.key]
                else:
                    raise TypeError(
                        f"rank {r} yielded {op!r}; yield "
                        f"ctx.send/recv/compute/put/flush/fence/read")

        def finalize_error(err: Exception) -> Exception:
            """Attach diagnostics to a typed scheduler error before raising."""
            err.sim_time = float(max(c.clock for c in ctxs))
            err.fault_events = list(fstate.events) if fstate is not None else []
            return err

        def stall_error() -> Exception:
            running = [r for r in range(n) if state[r] != _DONE]
            detail = "\n  ".join(mailbox_summary(r) for r in running[:8])
            more = ("" if len(running) <= 8
                    else f"\n  ... and {len(running) - 8} more")
            return finalize_error(StallError(
                f"no virtual-clock progress across {wd} scheduler events "
                f"(livelock, not deadlock: {len(running)} rank(s) still "
                f"live); per-rank state:\n  {detail}{more}"))

        while True:
            if wd is not None and events - wd_progress > wd:
                raise stall_error()
            best_rank = -1
            best_key = None
            best_msg_idx = None
            for r in range(n):
                if state[r] == _DONE:
                    continue
                if state[r] == _READY:
                    key = (ctxs[r].clock, 0.0, r)
                    midx = None
                else:  # _RECV
                    midx = match(r)
                    if midx is None:
                        if deadline[r] is None:
                            continue
                        # No message can beat the deadline: any rank able to
                        # send earlier has a smaller key and runs first.
                        key = (deadline[r], float("inf"), r)
                        midx = _TIMEOUT
                    else:
                        m = mailbox[r][midx]
                        key = (max(ctxs[r].clock, m.arrival), m.arrival, r)
                if best_key is None or key < best_key:
                    best_rank, best_key, best_msg_idx = r, key, midx
            if best_rank < 0:
                blocked = [r for r in range(n) if state[r] != _DONE]
                if not blocked:
                    break
                fencing = [r for r in blocked if state[r] == _FENCE]
                if fencing and len(fencing) == len(blocked):
                    # Epoch boundary: every live rank reached its fence and
                    # nothing else can run.  The fence completes at the
                    # latest of the entry clocks and the in-flight write
                    # arrivals; every pending write is applied, then each
                    # rank pays the barrier round-trip (one control send +
                    # recv) on top of its wait.
                    t_f = max(max(fence_t0[r] for r in fencing),
                              max((w.arrival for w in rma_pending),
                                  default=0.0))
                    writes = list(rma_pending)
                    rma_pending.clear()
                    apply_writes(writes)
                    epoch_applied.clear()
                    so, ro = net.send_overhead, net.recv_overhead
                    for r in fencing:
                        ctx = ctxs[r]
                        fop = pending_fence[r]
                        t0 = fence_t0[r]
                        ctx.clock = t_f + so + ro
                        ctx._charge(fop.category, (t_f - t0) + so + ro)
                        if mreg is not None:
                            mreg.on_wait(r, ctx.phase, ctx.sync,
                                         fop.category, t0, t_f, ctx.clock,
                                         None, None)
                        if trace is not None:
                            trace.append(TraceEvent(r, t0, ctx.clock,
                                                    "wait", ctx.phase,
                                                    fop.category, "fence"))
                        state[r] = _READY
                        pending_fence[r] = None
                    if wd is not None:
                        wd_progress = events
                    continue
                detail = "\n  ".join(mailbox_summary(r) for r in blocked[:8])
                more = ("" if len(blocked) <= 8
                        else f"\n  ... and {len(blocked) - 8} more")
                crash_note = (f" ({len(crashed)} rank(s) crashed: "
                              f"{crashed})" if crashed else "")
                raise finalize_error(DeadlockError(
                    f"{len(blocked)} rank(s) blocked with no matching "
                    f"messages{crash_note}:\n  {detail}{more}"))

            r = best_rank
            if state[r] == _READY:
                advance(r, None)
            elif best_msg_idx == _TIMEOUT:
                spec = pending_recv[r]
                ctx = ctxs[r]
                t0 = ctx.clock
                wait = max(0.0, deadline[r] - ctx.clock)
                ctx.clock = max(ctx.clock, deadline[r])
                ctx._charge(spec.category, wait)
                if mreg is not None:
                    mreg.on_wait(r, ctx.phase, ctx.sync, spec.category,
                                 t0, None, ctx.clock, None, None)
                if wd is not None and wait > 0:
                    wd_progress = events
                if trace is not None:
                    trace.append(TraceEvent(r, t0, ctx.clock, "wait",
                                            ctx.phase, spec.category,
                                            "timeout"))
                state[r] = _READY
                pending_recv[r] = None
                deadline[r] = None
                advance(r, None,
                        exc=RecvTimeout(r, spec.src, spec.tag, spec.timeout))
            else:
                spec = pending_recv[r]
                if self.strict_match and spec.src is ANY:
                    srcs: set[int] = set()
                    for m in mailbox[r]:
                        if spec.tag is not ANY:
                            if callable(spec.tag):
                                if not spec.tag(m.tag):
                                    continue
                            elif m.tag != spec.tag:
                                continue
                        srcs.add(m.src)
                    if len(srcs) >= 2:
                        # The recv is withdrawn without consuming either
                        # candidate (mirrors the ChecksumError flow).
                        state[r] = _READY
                        pending_recv[r] = None
                        deadline[r] = None
                        advance(r, None, exc=AmbiguousRecvError(
                            r, spec.tag, sorted(srcs)))
                        continue
                m = mailbox[r].pop(best_msg_idx)
                heapq.heapify(mailbox[r])
                ctx = ctxs[r]
                ro = net.recv_overhead
                t0 = ctx.clock
                wait = max(0.0, m.arrival - ctx.clock)
                ctx.clock = max(ctx.clock, m.arrival) + ro
                ctx._charge(spec.category, wait + ro)
                if rec is not None:
                    rec.on_recv(r, m.seq, ctx.phase, spec.category)
                if wd is not None:
                    wd_progress = events
                if transport is not None:
                    # The envelope acks every delivery: one control send.
                    ctx.clock += net.send_overhead
                    ctx._charge(spec.category, net.send_overhead)
                    ctx._charge_msg("ack", transport.ack_nbytes)
                    if mreg is not None:
                        mreg.on_ack(r, ctx.phase, "ack",
                                    transport.ack_nbytes)
                if mreg is not None:
                    mreg.on_wait(r, ctx.phase, ctx.sync, spec.category,
                                 t0, m.arrival, ctx.clock, m.seq, m.src)
                if trace is not None:
                    trace.append(TraceEvent(r, t0, ctx.clock, "wait",
                                            ctx.phase, spec.category, m.src))
                state[r] = _READY
                pending_recv[r] = None
                deadline[r] = None
                if m.checksum is not None and self.checksums:
                    actual = payload_checksum(m.payload)
                    if actual != m.checksum:
                        if fstate is not None:
                            fault_trace(fstate.record(
                                "checksum-fail", ctx.clock, m.src, r, m.tag),
                                r)
                        advance(r, None, exc=ChecksumError(
                            r, m.src, m.tag, m.checksum, actual))
                        continue
                advance(r, (m.src, m.tag, m.payload))

        # Every rank exited; whatever is still in a mailbox was sent but
        # never received.  Surfaced (never silently discarded) so the
        # invariant layer can flag protocol leaks in fault-free runs.
        unconsumed = [UnconsumedMessage(dst=r, src=m.src, tag=m.tag,
                                        arrival=m.arrival, nbytes=m.nbytes)
                      for r in range(n)
                      for m in sorted(mailbox[r])]
        unapplied = [UnappliedPut(origin=w.origin, dst=w.dst, key=w.key,
                                  nbytes=w.nbytes)
                     for w in sorted(rma_pending, key=lambda w: w.seq)]
        result = SimResult(
            clocks=np.array([c.clock for c in ctxs]),
            times=[c.times for c in ctxs],
            sent_msgs=[c.sent_msgs for c in ctxs],
            sent_bytes=[c.sent_bytes for c in ctxs],
            marks=[c.marks for c in ctxs],
            results=results,
            trace=trace,
            fault_events=list(fstate.events) if fstate is not None else None,
            crashed=crashed,
            unconsumed_msgs=unconsumed,
            rma_put_bytes=rma_put_bytes,
            rma_applied_bytes=rma_applied_bytes,
            rma_peak_bytes=list(rma_peak),
            unapplied_puts=unapplied,
        )
        if self.invariants:
            from repro.check.invariants import check_sim

            check_sim(result, faulted=self.faults is not None)
        return result

    @staticmethod
    def _apply_reorder(box: list[_Message], src: int) -> None:
        """Swap arrival times of the two newest pending messages from
        ``src`` in ``box`` (models out-of-order delivery on one link)."""
        newest = second = None
        for i, m in enumerate(box):
            if m.src != src:
                continue
            if newest is None or m.seq > box[newest].seq:
                newest, second = i, newest
            elif second is None or m.seq > box[second].seq:
                second = i
        if newest is not None and second is not None:
            box[newest].arrival, box[second].arrival = \
                box[second].arrival, box[newest].arrival
            heapq.heapify(box)
