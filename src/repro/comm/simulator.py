"""Deterministic discrete-event simulator for message-passing programs.

Each rank is a generator that yields operation objects created through its
:class:`RankCtx` (``send`` / ``recv`` / ``compute``).  The scheduler always
advances the runnable rank with the smallest virtual clock, so message
availability tracks causal order closely; ``recv(ANY, ANY)`` picks the
matching message with the earliest arrival time, mirroring
``MPI_Recv(MPI_ANY_SOURCE)`` in the paper's Algorithm 3 while staying
deterministic.

Sends are eager and buffered (the solvers use ``MPI_Isend``): the sender is
busy only for the network model's injection overhead, and the payload is
copied so later mutation by the sender cannot race the receiver.

Every operation carries a ``(phase, category)`` label; per-rank time is
accumulated per label, which is how the paper's Z-Comm / XY-Comm /
FP-Operation breakdowns (Figs. 5-6) and per-rank load-balance plots
(Figs. 7-8) are produced.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterable

import numpy as np


class _AnyType:
    """Singleton wildcard for recv source/tag matching."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "ANY"


ANY = _AnyType()


class DeadlockError(RuntimeError):
    """All live ranks are blocked on receives with no matching messages."""


@dataclass
class _Message:
    arrival: float
    seq: int
    src: int
    tag: Hashable
    payload: Any
    nbytes: int

    def __lt__(self, other: "_Message") -> bool:
        return (self.arrival, self.seq) < (other.arrival, other.seq)


@dataclass
class _SendOp:
    dst: int
    payload: Any
    tag: Hashable
    nbytes: int
    category: str


@dataclass
class _RecvOp:
    src: Any
    tag: Any
    category: str


@dataclass
class _ComputeOp:
    seconds: float
    category: str


def _payload_nbytes(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(_payload_nbytes(p) for p in payload) + 16
    return 32  # control message


def _copy_payload(payload: Any) -> Any:
    if isinstance(payload, np.ndarray):
        return payload.copy()
    if isinstance(payload, tuple):
        return tuple(_copy_payload(p) for p in payload)
    if isinstance(payload, list):
        return [_copy_payload(p) for p in payload]
    return payload


class RankCtx:
    """Per-rank handle: build ops to ``yield`` and accumulate timing."""

    def __init__(self, rank: int, nranks: int, machine):
        self.rank = rank
        self.nranks = nranks
        self.machine = machine
        self.clock = 0.0
        self.phase = ""
        self.times: dict[tuple[str, str], float] = {}
        self.sent_msgs: dict[tuple[str, str], int] = {}
        self.sent_bytes: dict[tuple[str, str], float] = {}
        self.marks: dict[str, float] = {}

    # -- op builders (use as `yield ctx.send(...)`) -------------------------

    def send(self, dst: int, payload: Any, tag: Hashable = None,
             nbytes: int | None = None, category: str = "comm") -> _SendOp:
        """Eager buffered send of ``payload`` to rank ``dst``."""
        if not (0 <= dst < self.nranks):
            raise ValueError(f"send to invalid rank {dst}")
        if nbytes is None:
            nbytes = _payload_nbytes(payload)
        return _SendOp(dst, payload, tag, nbytes, category)

    def recv(self, src: Any = ANY, tag: Any = ANY,
             category: str = "comm") -> _RecvOp:
        """Blocking receive; yields ``(src, tag, payload)``.

        ``tag`` may be ``ANY``, an exact value, or a predicate
        ``callable(tag) -> bool`` (used to scope phases of a protocol).
        """
        return _RecvOp(src, tag, category)

    def compute(self, seconds: float, category: str = "fp") -> _ComputeOp:
        """Advance the local clock by ``seconds`` of work."""
        if seconds < 0:
            raise ValueError("compute time must be >= 0")
        return _ComputeOp(seconds, category)

    def gemm(self, m: int, n: int, k: int, category: str = "fp") -> _ComputeOp:
        """Convenience: a dense m×k @ k×n on this rank's CPU model."""
        from repro.comm.costmodel import gemm_bytes, gemm_flops

        t = self.machine.cpu.op_time(gemm_flops(m, n, k), gemm_bytes(m, n, k))
        return _ComputeOp(t, category)

    # -- bookkeeping ---------------------------------------------------------

    def set_phase(self, phase: str) -> None:
        self.phase = phase

    def mark(self, name: str) -> None:
        """Record the current clock under ``name`` (phase boundaries)."""
        self.marks[name] = self.clock

    def _charge(self, category: str, seconds: float) -> None:
        key = (self.phase, category)
        self.times[key] = self.times.get(key, 0.0) + seconds

    def _charge_msg(self, category: str, nbytes: int) -> None:
        key = (self.phase, category)
        self.sent_msgs[key] = self.sent_msgs.get(key, 0) + 1
        self.sent_bytes[key] = self.sent_bytes.get(key, 0.0) + nbytes


@dataclass
class TraceEvent:
    """One timeline entry (only recorded with ``Simulator(trace=True)``)."""

    rank: int
    t0: float
    t1: float
    kind: str        # "compute" | "send" | "wait"
    phase: str
    category: str
    detail: Any = None  # dst rank for sends, src for waits


@dataclass
class SimResult:
    """Outcome of a simulation: per-rank clocks, times, and return values."""

    clocks: np.ndarray
    times: list[dict[tuple[str, str], float]]
    sent_msgs: list[dict[tuple[str, str], int]]
    sent_bytes: list[dict[tuple[str, str], float]]
    marks: list[dict[str, float]]
    results: list[Any]
    trace: list[TraceEvent] | None = None

    def trace_timeline(self, rank: int | None = None) -> list[TraceEvent]:
        """Chronological trace events (optionally for one rank)."""
        if self.trace is None:
            raise ValueError("run the Simulator with trace=True to record "
                             "a timeline")
        events = (self.trace if rank is None
                  else [e for e in self.trace if e.rank == rank])
        return sorted(events, key=lambda e: (e.t0, e.rank))

    @property
    def nranks(self) -> int:
        return len(self.clocks)

    @property
    def makespan(self) -> float:
        """Wall-clock of the parallel run: the slowest rank's finish time."""
        return float(self.clocks.max())

    def time_by(self, phase: str | None = None,
                category: str | None = None) -> np.ndarray:
        """Per-rank total seconds over labels matching the filters.

        ``phase``/``category`` of ``None`` match everything; otherwise exact
        string match.
        """
        out = np.zeros(self.nranks)
        for r, t in enumerate(self.times):
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    out[r] += v
        return out

    def msgs_by(self, phase: str | None = None,
                category: str | None = None) -> int:
        total = 0
        for t in self.sent_msgs:
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    total += v
        return total

    def bytes_by(self, phase: str | None = None,
                 category: str | None = None) -> float:
        total = 0.0
        for t in self.sent_bytes:
            for (p, c), v in t.items():
                if (phase is None or p == phase) and (category is None or c == category):
                    total += v
        return total

    def categories(self) -> set[tuple[str, str]]:
        out: set[tuple[str, str]] = set()
        for t in self.times:
            out.update(t)
        return out


_READY, _RECV, _DONE = 0, 1, 2


class Simulator:
    """Run a message-passing program over ``nranks`` simulated ranks."""

    def __init__(self, nranks: int, machine, max_events: int = 50_000_000,
                 trace: bool = False):
        if nranks < 1:
            raise ValueError("nranks must be >= 1")
        self.nranks = nranks
        self.machine = machine
        self.max_events = max_events
        self.trace = trace

    def run(self, rank_fn: Callable[[RankCtx], Iterable]) -> SimResult:
        """Execute ``rank_fn(ctx)`` as a generator on every rank.

        ``rank_fn`` may also return a non-generator (rank does nothing).
        Returns a :class:`SimResult`; generator return values become
        ``results``.
        """
        n = self.nranks
        ctxs = [RankCtx(r, n, self.machine) for r in range(n)]
        gens: list[Any] = []
        for r in range(n):
            g = rank_fn(ctxs[r])
            gens.append(g if hasattr(g, "send") else iter(()))
        state = [_READY] * n
        pending_recv: list[_RecvOp | None] = [None] * n
        resume_val: list[Any] = [None] * n
        results: list[Any] = [None] * n
        mailbox: list[list[_Message]] = [[] for _ in range(n)]
        seq = 0
        events = 0
        started = [False] * n
        trace: list[TraceEvent] | None = [] if self.trace else None

        def match(r: int) -> int | None:
            """Index of the earliest-arriving matching message for rank r."""
            spec = pending_recv[r]
            best = None
            best_key = None
            for i, m in enumerate(mailbox[r]):
                if spec.src is not ANY and m.src != spec.src:
                    continue
                if spec.tag is not ANY:
                    if callable(spec.tag):
                        if not spec.tag(m.tag):
                            continue
                    elif m.tag != spec.tag:
                        continue
                key = (m.arrival, m.seq)
                if best_key is None or key < best_key:
                    best, best_key = i, key
            return best

        def advance(r: int, value: Any) -> None:
            """Run rank r's generator until it blocks on a recv or finishes."""
            nonlocal seq, events
            ctx = ctxs[r]
            gen = gens[r]
            while True:
                events += 1
                if events > self.max_events:
                    raise RuntimeError("simulation exceeded max_events")
                try:
                    if not started[r]:
                        started[r] = True
                        op = next(gen)
                    else:
                        op = gen.send(value)
                except StopIteration as stop:
                    state[r] = _DONE
                    results[r] = stop.value
                    return
                value = None
                if isinstance(op, _SendOp):
                    net = self.machine.net
                    t0 = ctx.clock
                    ctx.clock += net.send_overhead
                    ctx._charge(op.category, net.send_overhead)
                    ctx._charge_msg(op.category, op.nbytes)
                    same = self.machine.same_node(r, op.dst)
                    arrival = ctx.clock + net.latency(op.nbytes, same)
                    heapq.heappush(
                        mailbox[op.dst],
                        _Message(arrival, seq, r, op.tag,
                                 _copy_payload(op.payload), op.nbytes))
                    seq += 1
                    if trace is not None:
                        trace.append(TraceEvent(r, t0, ctx.clock, "send",
                                                ctx.phase, op.category,
                                                op.dst))
                elif isinstance(op, _ComputeOp):
                    t0 = ctx.clock
                    ctx.clock += op.seconds
                    ctx._charge(op.category, op.seconds)
                    if trace is not None and op.seconds > 0:
                        trace.append(TraceEvent(r, t0, ctx.clock, "compute",
                                                ctx.phase, op.category))
                elif isinstance(op, _RecvOp):
                    state[r] = _RECV
                    pending_recv[r] = op
                    return
                else:
                    raise TypeError(
                        f"rank {r} yielded {op!r}; yield ctx.send/recv/compute")

        while True:
            best_rank = -1
            best_key = None
            best_msg_idx = None
            for r in range(n):
                if state[r] == _DONE:
                    continue
                if state[r] == _READY:
                    key = (ctxs[r].clock, 0.0, r)
                    midx = None
                else:  # _RECV
                    midx = match(r)
                    if midx is None:
                        continue
                    m = mailbox[r][midx]
                    key = (max(ctxs[r].clock, m.arrival), m.arrival, r)
                if best_key is None or key < best_key:
                    best_rank, best_key, best_msg_idx = r, key, midx
            if best_rank < 0:
                blocked = [r for r in range(n) if state[r] != _DONE]
                if not blocked:
                    break
                detail = ", ".join(
                    f"rank {r} (phase={ctxs[r].phase!r}, "
                    f"waiting src={pending_recv[r].src} tag={pending_recv[r].tag})"
                    for r in blocked[:8])
                raise DeadlockError(
                    f"{len(blocked)} rank(s) blocked with no matching "
                    f"messages: {detail}")

            r = best_rank
            if state[r] == _READY:
                advance(r, None)
            else:
                m = mailbox[r].pop(best_msg_idx)
                heapq.heapify(mailbox[r])
                spec = pending_recv[r]
                ctx = ctxs[r]
                ro = self.machine.net.recv_overhead
                t0 = ctx.clock
                wait = max(0.0, m.arrival - ctx.clock)
                ctx.clock = max(ctx.clock, m.arrival) + ro
                ctx._charge(spec.category, wait + ro)
                if trace is not None:
                    trace.append(TraceEvent(r, t0, ctx.clock, "wait",
                                            ctx.phase, spec.category, m.src))
                state[r] = _READY
                pending_recv[r] = None
                advance(r, (m.src, m.tag, m.payload))

        return SimResult(
            clocks=np.array([c.clock for c in ctxs]),
            times=[c.times for c in ctxs],
            sent_msgs=[c.sent_msgs for c in ctxs],
            sent_bytes=[c.sent_bytes for c in ctxs],
            marks=[c.marks for c in ctxs],
            results=results,
            trace=trace,
        )
