"""Export simulator traces to standard timeline formats.

``Simulator(trace=True)`` records every compute/send/wait interval; this
module writes them as Chrome trace-event JSON (loadable in
``chrome://tracing`` / Perfetto, one track per rank) or as CSV for ad-hoc
analysis.

Fault-injection runs (``Simulator(faults=...)``) additionally record every
injected or transport-handled fault — drops, retransmits, corruption,
crashes — as zero-duration ``"fault"`` trace events; these are exported as
Chrome *instant* events (``"ph": "i"``) so they show up as markers on the
affected rank's track.
"""

from __future__ import annotations

import csv
import json

from repro.comm.simulator import SimResult, TraceEvent


def _fault_args(e: TraceEvent) -> dict:
    if isinstance(e.detail, dict):
        return {k: repr(v) if not isinstance(v, (int, float, str, type(None)))
                else v for k, v in e.detail.items()}
    return {} if e.detail is None else {"note": repr(e.detail)}


def to_chrome_trace(result: SimResult, path: str,
                    time_unit: float = 1e6, metrics=None) -> int:
    """Write a Chrome trace-event JSON file; returns the event count.

    ``time_unit`` converts simulated seconds to trace microseconds
    (Chrome's expected unit).

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry` from the
    same run) enriches the trace: every delivered message becomes a flow
    arrow from the sender's injection to the receiver's delivery, tagged
    with its phase/sync labels, and ranks get human-readable thread names.
    """
    events = []
    if metrics is not None:
        from repro.obs.metrics import phase_name

        for r in range(metrics.nranks):
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": r,
                "args": {"name": f"rank {r}"},
            })
        for msg in metrics.messages.values():
            if not msg.delivered:
                continue
            args = {"bytes": msg.nbytes, "phase": phase_name(msg.phase)}
            if msg.sync:
                args["sync"] = msg.sync
            common = {"name": f"msg:{msg.category}", "cat": "comm",
                      "id": msg.seq, "pid": 0, "args": args}
            events.append({**common, "ph": "s", "tid": msg.src,
                           "ts": msg.t_send1 * time_unit})
            events.append({**common, "ph": "f", "bp": "e", "tid": msg.dst,
                           "ts": msg.arrival * time_unit})
    for e in result.trace_timeline():
        if e.kind == "fault":
            events.append({
                "name": f"fault:{e.category}",
                "cat": "fault",
                "ph": "i",
                "s": "t",
                "ts": e.t0 * time_unit,
                "pid": 0,
                "tid": e.rank,
                "args": _fault_args(e),
            })
            continue
        events.append({
            "name": f"{e.phase}:{e.category}" if e.phase else e.category,
            "cat": e.kind,
            "ph": "X",
            "ts": e.t0 * time_unit,
            "dur": max(0.0, (e.t1 - e.t0) * time_unit),
            "pid": 0,
            "tid": e.rank,
            "args": ({"peer": e.detail} if e.detail is not None else {}),
        })
    with open(path, "w") as f:
        json.dump({"traceEvents": events,
                   "displayTimeUnit": "ms"}, f)
    return len(events)


def to_csv(result: SimResult, path: str) -> int:
    """Write the trace as CSV (rank, t0, t1, kind, phase, category, peer)."""
    rows = 0
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["rank", "t0", "t1", "kind", "phase", "category", "peer"])
        for e in result.trace_timeline():
            detail = e.detail
            if isinstance(detail, dict):
                detail = ";".join(f"{k}={v}" for k, v in detail.items())
            w.writerow([e.rank, f"{e.t0:.9e}", f"{e.t1:.9e}", e.kind,
                        e.phase, e.category,
                        "" if detail is None else detail])
            rows += 1
    return rows
