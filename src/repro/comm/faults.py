"""Deterministic fault injection and resilience primitives for the runtime.

The paper's algorithms (Algs. 1-5) assume a lossless in-order fabric; this
module supplies the machinery to *break* that assumption on purpose and to
survive it.  A :class:`FaultPlan` is a seeded, deterministic policy attached
via ``Simulator(faults=...)``: it can drop, duplicate, delay-spike, reorder
or bit-corrupt messages matched by (src, dst, tag, virtual-time window), and
crash or slow down a rank at a virtual time.  Every injected event is
recorded as a :class:`FaultEvent` (surfaced on ``SimResult.fault_events``
and, with ``trace=True``, in the Chrome-trace export).

Detection/recovery primitives defined here and honored by the simulator:

- :class:`RecvTimeout` — raised *inside* the receiving rank when
  ``ctx.recv(..., timeout=...)`` expires, so protocols can react instead of
  hanging.
- :class:`ChecksumError` — raised on delivery when payload checksums are
  enabled (``Simulator(checksums=True)``) and the data was corrupted in
  flight.
- :class:`StallError` — the scheduler watchdog's report when the virtual
  clock stops advancing even though ranks keep executing (livelock), which
  is distinct from a true :class:`~repro.comm.simulator.DeadlockError`.
- :class:`ReliableTransport` — configuration of the opt-in ack/retransmit
  envelope (``Simulator(reliable=True)``): bounded retries with exponential
  virtual-time backoff, duplicate suppression, and per-message ack cost
  charged to the α-β model.

Determinism: all randomness flows through one ``numpy`` generator seeded
from the plan, and the simulator itself is deterministic, so identical
seeds reproduce identical fault schedules and virtual clocks.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import Any

import numpy as np


# ---------------------------------------------------------------------------
# Typed errors (the "fail loudly and diagnosably" contract).
# ---------------------------------------------------------------------------


class CommFaultError(RuntimeError):
    """Base class for detected communication failures in the runtime."""


class RecvTimeout(CommFaultError):
    """A ``ctx.recv(..., timeout=...)`` expired with no matching message.

    Thrown *into* the waiting rank's generator (catchable at the yield
    point); if uncaught it propagates out of ``Simulator.run``.
    """

    def __init__(self, rank: int, src: Any, tag: Any, waited: float):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.waited = waited
        super().__init__(
            f"rank {rank} recv(src={src}, tag={tag!r}) timed out after "
            f"{waited:.3e}s of virtual time")


class ChecksumError(CommFaultError):
    """A delivered payload failed checksum verification (bit corruption)."""

    def __init__(self, rank: int, src: int, tag: Any,
                 expected: int, actual: int):
        self.rank = rank
        self.src = src
        self.tag = tag
        self.expected = expected
        self.actual = actual
        super().__init__(
            f"rank {rank} received corrupted payload from rank {src} "
            f"(tag={tag!r}): checksum {actual:#010x} != expected "
            f"{expected:#010x}")


class StallError(CommFaultError):
    """The watchdog saw no virtual-clock progress across many events.

    Unlike a deadlock (nothing runnable), a stall means ranks *are*
    executing — e.g. a zero-cost spin loop or a retransmit storm — without
    advancing virtual time.  The message reports per-rank scheduler state.
    """


# ---------------------------------------------------------------------------
# Payload checksums and corruption.
# ---------------------------------------------------------------------------


def payload_checksum(payload: Any) -> int:
    """CRC32 over a payload's bytes, recursing into containers.

    Type tags are mixed in so e.g. ``[a]`` and ``(a,)`` differ; non-array
    leaves hash their ``repr``.
    """
    def crc(acc: int, data: bytes) -> int:
        return zlib.crc32(data, acc)

    def walk(acc: int, p: Any) -> int:
        if isinstance(p, np.ndarray):
            acc = crc(acc, b"A")
            return crc(acc, np.ascontiguousarray(p).tobytes())
        if isinstance(p, np.generic):
            return crc(crc(acc, b"S"), p.tobytes())
        if isinstance(p, tuple):
            acc = crc(acc, b"T")
        elif isinstance(p, list):
            acc = crc(acc, b"L")
        elif isinstance(p, dict):
            acc = crc(acc, b"D")
            for k in sorted(p, key=repr):
                acc = walk(crc(acc, repr(k).encode()), p[k])
            return acc
        else:
            return crc(crc(acc, b"O"), repr(p).encode())
        for item in p:
            acc = walk(acc, item)
        return acc

    return walk(0, payload)


def _collect_arrays(payload: Any, out: list) -> None:
    if isinstance(payload, np.ndarray) and payload.nbytes:
        out.append(payload)
    elif isinstance(payload, (list, tuple)):
        for p in payload:
            _collect_arrays(p, out)
    elif isinstance(payload, dict):
        for v in payload.values():
            _collect_arrays(v, out)


def corrupt_payload(payload: Any, rng: np.random.Generator) -> bool:
    """Flip one random bit of one random array in ``payload`` (in place).

    Returns whether anything was corrupted (payloads with no array data are
    left untouched).  The payload must already be the simulator's private
    copy.
    """
    arrays: list[np.ndarray] = []
    _collect_arrays(payload, arrays)
    if not arrays:
        return False
    a = arrays[int(rng.integers(len(arrays)))]
    raw = a.view(np.uint8).reshape(-1)
    byte = int(rng.integers(raw.size))
    bit = int(rng.integers(8))
    raw[byte] ^= np.uint8(1 << bit)
    return True


# ---------------------------------------------------------------------------
# Fault events, rules, plans.
# ---------------------------------------------------------------------------


@dataclass
class FaultEvent:
    """One injected (or transport-handled) fault, for trace and reports."""

    kind: str          # drop | duplicate | corrupt | delay | reorder |
                       # retransmit | lost | crash | slowdown | dup-suppressed
    time: float
    src: int = -1
    dst: int = -1
    tag: Any = None
    note: str = ""


@dataclass(frozen=True)
class FaultRule:
    """Per-message fault probabilities over a match window.

    ``src``/``dst`` of ``None`` match any rank; ``tag`` may be ``None``
    (any), an exact value, or a predicate ``callable(tag) -> bool``.  The
    rule applies to sends initiated in virtual-time ``[t0, t1)``.
    """

    drop: float = 0.0
    duplicate: float = 0.0
    corrupt: float = 0.0
    delay: float = 0.0
    delay_seconds: float = 1e-4
    reorder: float = 0.0
    src: int | None = None
    dst: int | None = None
    tag: Any = None
    t0: float = 0.0
    t1: float = math.inf

    def matches(self, src: int, dst: int, tag: Any, t: float) -> bool:
        if self.src is not None and src != self.src:
            return False
        if self.dst is not None and dst != self.dst:
            return False
        if not (self.t0 <= t < self.t1):
            return False
        if self.tag is not None:
            if callable(self.tag):
                if not self.tag(tag):
                    return False
            elif tag != self.tag:
                return False
        return True


@dataclass
class _Decision:
    """Combined outcome of all matching rules for one transmission attempt."""

    drop: bool = False
    duplicate: bool = False
    corrupt: bool = False
    reorder: bool = False
    extra_delay: float = 0.0

    def any(self) -> bool:
        return (self.drop or self.duplicate or self.corrupt or self.reorder
                or self.extra_delay > 0.0)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, deterministic fault-injection policy.

    Attach with ``Simulator(..., faults=plan)``.  ``rules`` are evaluated
    per transmission attempt in order; ``crash`` maps rank -> virtual crash
    time (the rank stops executing at its next scheduling point at or after
    that clock); ``slowdown`` maps rank -> ``(from_time, factor)`` scaling
    all later compute on that rank.

    Use :meth:`uniform` for the common "same rates everywhere" policy and
    :meth:`fork` to derive an independent-but-deterministic child plan
    (retry attempts, sweep points).
    """

    seed: Any = 0
    rules: tuple[FaultRule, ...] = ()
    crash: dict[int, float] = field(default_factory=dict)
    slowdown: dict[int, tuple[float, float]] = field(default_factory=dict)

    @classmethod
    def uniform(cls, seed: Any = 0, drop: float = 0.0, duplicate: float = 0.0,
                corrupt: float = 0.0, delay: float = 0.0,
                delay_seconds: float = 1e-4, reorder: float = 0.0,
                crash: dict[int, float] | None = None,
                slowdown: dict[int, tuple[float, float]] | None = None,
                ) -> "FaultPlan":
        """One rule matching every message, plus optional rank faults."""
        rule = FaultRule(drop=drop, duplicate=duplicate, corrupt=corrupt,
                         delay=delay, delay_seconds=delay_seconds,
                         reorder=reorder)
        return cls(seed=seed, rules=(rule,) if rule != FaultRule() else (),
                   crash=dict(crash or {}), slowdown=dict(slowdown or {}))

    def fork(self, k: int) -> "FaultPlan":
        """Derived plan with an independent RNG stream (same rules)."""
        base = self.seed if isinstance(self.seed, (list, tuple)) else [self.seed]
        return FaultPlan(seed=[*base, k], rules=self.rules,
                         crash=dict(self.crash), slowdown=dict(self.slowdown))

    def start_run(self) -> "FaultState":
        return FaultState(self)


@dataclass(frozen=True)
class FaultSchedule:
    """A virtual-time sequence of fault plans — escalation mid-run.

    ``phases`` is a tuple of ``(t0, t1, plan)`` windows in virtual time;
    :meth:`plan_at` returns the plan of the first window containing ``t``
    (``None`` outside every window = lossless fabric).  The serving tier
    (``SolveService(fault_schedule=...)``) consults this at each batch's
    dispatch instant, so a schedule models a fabric that degrades, gets
    byzantine, and heals while the service keeps running — the
    degraded-mode axis the adversarial scenarios sweep.

    Determinism: each phase holds an ordinary seeded :class:`FaultPlan`;
    the consumer forks it per batch exactly as it would a static plan.
    """

    phases: tuple = ()     # ((t0, t1, FaultPlan | None), ...)

    def __post_init__(self):
        for t0, t1, _plan in self.phases:
            if not t0 < t1:
                raise ValueError(f"fault phase window [{t0}, {t1}) is empty")

    def plan_at(self, t: float) -> "FaultPlan | None":
        for t0, t1, plan in self.phases:
            if t0 <= t < t1:
                return plan
        return None

    @property
    def end(self) -> float:
        """Virtual end of the last disturbance window (0.0 when empty)."""
        return max((t1 for _t0, t1, _p in self.phases), default=0.0)


class FaultState:
    """Mutable per-run state: the RNG stream, fired crashes, event log."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.rng = np.random.default_rng(plan.seed)
        self.events: list[FaultEvent] = []
        self._crashed: set[int] = set()

    def record(self, kind: str, time: float, src: int = -1, dst: int = -1,
               tag: Any = None, note: str = "") -> FaultEvent:
        ev = FaultEvent(kind, time, src, dst, tag, note)
        self.events.append(ev)
        return ev

    def decide(self, src: int, dst: int, tag: Any, t: float) -> _Decision:
        """Draw one transmission attempt's fate from the matching rules."""
        d = _Decision()
        for rule in self.plan.rules:
            if not rule.matches(src, dst, tag, t):
                continue
            if rule.drop and self.rng.random() < rule.drop:
                d.drop = True
            if rule.duplicate and self.rng.random() < rule.duplicate:
                d.duplicate = True
            if rule.corrupt and self.rng.random() < rule.corrupt:
                d.corrupt = True
            if rule.reorder and self.rng.random() < rule.reorder:
                d.reorder = True
            if rule.delay and self.rng.random() < rule.delay:
                d.extra_delay += rule.delay_seconds * (0.5 + self.rng.random())
        return d

    def crash_due(self, rank: int, t: float) -> bool:
        """True exactly once, when ``rank``'s clock reaches its crash time."""
        at = self.plan.crash.get(rank)
        if at is None or rank in self._crashed or t < at:
            return False
        self._crashed.add(rank)
        return True

    def compute_scale(self, rank: int, t: float) -> float:
        sl = self.plan.slowdown.get(rank)
        if sl is None or t < sl[0]:
            return 1.0
        return sl[1]


# ---------------------------------------------------------------------------
# Reliable transport (ack/retransmit envelope).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ReliableTransport:
    """Configuration of the opt-in ack/retransmit message envelope.

    With ``Simulator(reliable=True)`` (or an explicit instance) every
    message travels under a sequence-numbered envelope: dropped — and, with
    checksums enabled, corrupted — copies are retransmitted after an RTO
    that backs off exponentially (``rto * backoff**attempt``), up to
    ``max_retries`` retries; after that the message is recorded as ``lost``.
    Duplicates and reorderings injected by a fault plan are suppressed by
    the envelope's sequencing.  Costs charged to the α-β model: each
    retransmitted copy counts against the sender's message/byte counters,
    the accumulated backoff delays the arrival, and each delivery charges
    the receiver one ``ack_nbytes`` control send (``send_overhead``
    seconds, category ``"ack"``).

    ``rto=None`` derives the base timeout from the machine's network model
    (four inter-node latencies).
    """

    max_retries: int = 5
    rto: float | None = None
    backoff: float = 2.0
    ack_nbytes: int = 32

    def base_rto(self, net) -> float:
        if self.rto is not None:
            return self.rto
        return 4.0 * (net.alpha_inter + net.send_overhead + net.recv_overhead)
