"""Performance models: α-β networks, CPU/GPU rooflines, machine presets.

The presets encode the three systems of the paper's evaluation with
parameters taken from the paper's text (Slingshot 25 GB/s per node,
NVLink 300 GB/s vs 12.5 GB/s per-GPU inter-node in §4.2.2) and public specs
(A100/MI250X HBM bandwidth, Aries latency).  Absolute times from the
simulator are *model* times; the reproduction targets the paper's scaling
shape, not its absolute seconds (see DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NetworkModel:
    """α-β point-to-point cost model with intra/inter-node tiers.

    A message of ``b`` bytes between ranks on the same node costs
    ``alpha_intra + b * beta_intra`` seconds end-to-end, else the inter
    tier; the sender is busy only for ``send_overhead`` (eager buffering,
    matching the MPI_Isend-driven solvers).
    """

    alpha_intra: float
    alpha_inter: float
    beta_intra: float   # s/byte = 1 / bandwidth
    beta_inter: float
    send_overhead: float = 2.0e-7
    # Per-message CPU cost on the receiver (matching + copy-out); this is
    # what serializes flat fan-in/fan-out roots and makes the binary
    # communication trees of §3.3 pay off.
    recv_overhead: float = 5.0e-7

    def latency(self, nbytes: int, same_node: bool) -> float:
        if same_node:
            return self.alpha_intra + nbytes * self.beta_intra
        return self.alpha_inter + nbytes * self.beta_inter


@dataclass(frozen=True)
class CpuModel:
    """Roofline-ish per-rank CPU model.

    ``flop_rate`` caps compute-bound kernels, ``mem_bw`` caps
    bandwidth-bound ones (SpTRSV GEMVs are the latter), ``op_overhead`` is
    the per-kernel dispatch/loop cost that dominates tiny supernode ops.
    """

    flop_rate: float
    mem_bw: float
    op_overhead: float = 2.0e-7

    def op_time(self, flops: float, nbytes: float) -> float:
        return max(flops / self.flop_rate, nbytes / self.mem_bw) + self.op_overhead


@dataclass(frozen=True)
class GpuModel:
    """Per-GPU execution model for the Alg. 4/5 kernels.

    One thread block processes one supernode column; ``num_sms`` bounds the
    number of concurrently *computing* blocks, ``block_flop_rate`` /
    ``block_mem_bw`` are per-thread-block throughputs, ``block_overhead``
    models scheduling/spin-wait release latency, and ``nvshmem_*`` give the
    GPU-initiated one-sided message cost (two tiers like the network).
    ``u_penalty`` is the paper's observed U-solve slowdown from reversed,
    less-coalesced memory access.
    """

    num_sms: int
    block_flop_rate: float
    block_mem_bw: float
    block_overhead: float
    nvshmem_alpha_intra: float
    nvshmem_alpha_inter: float
    nvshmem_beta_intra: float
    nvshmem_beta_inter: float
    gpus_per_node: int = 4
    u_penalty: float = 1.3
    # Whether the one-sided library supports MPI sub-communicators (NVSHMEM
    # does; ROC-SHMEM does not, limiting Crusher to Px = Py = 1, §3.4).
    one_sided_subcomms: bool = True

    def op_time(self, flops: float, nbytes: float, u_solve: bool = False) -> float:
        t = max(flops / self.block_flop_rate, nbytes / self.block_mem_bw)
        t += self.block_overhead
        if u_solve:
            t *= self.u_penalty
        return t

    def msg_latency(self, nbytes: int, same_node: bool) -> float:
        if same_node:
            return self.nvshmem_alpha_intra + nbytes * self.nvshmem_beta_intra
        return self.nvshmem_alpha_inter + nbytes * self.nvshmem_beta_inter


@dataclass(frozen=True)
class Machine:
    """A machine preset: network + per-rank CPU model (+ optional GPU)."""

    name: str
    net: NetworkModel
    cpu: CpuModel
    ranks_per_node: int
    gpu: GpuModel | None = None

    def same_node(self, r0: int, r1: int) -> bool:
        return r0 // self.ranks_per_node == r1 // self.ranks_per_node

    def with_(self, **kwargs) -> "Machine":
        """Return a modified copy (ablation knob)."""
        return replace(self, **kwargs)


def gemm_flops(m: int, n: int, k: int) -> float:
    """FLOPs of an m×k by k×n multiply-accumulate."""
    return 2.0 * m * n * k


def gemm_bytes(m: int, n: int, k: int) -> float:
    """Bytes touched by an m×k by k×n GEMM (read A, B; read+write C)."""
    return 8.0 * (m * k + k * n + 2 * m * n)


# ---------------------------------------------------------------------------
# Machine presets.  Absolute numbers are order-of-magnitude calibrations; the
# experiments depend on the *ratios* (latency vs bandwidth vs compute,
# intra- vs inter-node, CPU vs GPU), which follow the published specs.
# ---------------------------------------------------------------------------

CORI_HASWELL = Machine(
    name="cori-haswell",
    # Cray Aries: ~1.3 us MPI latency; per-rank share of the node injection
    # bandwidth with 32 ranks per node.
    net=NetworkModel(alpha_intra=9.0e-7, alpha_inter=2.2e-6,
                     beta_intra=1 / 3.0e9, beta_inter=1 / 1.0e9,
                     send_overhead=6.0e-7, recv_overhead=6.0e-7),
    # One Haswell core driving bandwidth-bound GEMVs.
    cpu=CpuModel(flop_rate=9.0e9, mem_bw=3.5e9, op_overhead=2.5e-7),
    ranks_per_node=32,
)

# CPU reference runs on the GPU systems: one MPI rank per GPU slot, each
# using its share of an EPYC socket (the paper's CPU/GPU comparisons use the
# same rank counts).
PERLMUTTER_CPU = Machine(
    name="perlmutter-cpu",
    net=NetworkModel(alpha_intra=7.0e-7, alpha_inter=1.8e-6,
                     beta_intra=1 / 6.0e9, beta_inter=1 / 6.0e9,
                     send_overhead=5.0e-7, recv_overhead=5.0e-7),
    cpu=CpuModel(flop_rate=6.0e10, mem_bw=2.5e10, op_overhead=1.0e-6),
    ranks_per_node=4,
)

PERLMUTTER_GPU = Machine(
    name="perlmutter-gpu",
    net=PERLMUTTER_CPU.net,  # MPI path (used by the inter-grid allreduce)
    cpu=PERLMUTTER_CPU.cpu,
    ranks_per_node=4,
    gpu=GpuModel(
        num_sms=108,
        # Per-thread-block GEMV throughput on A100 (HBM2e 1.55 TB/s over
        # ~108 blocks, small-op efficiency ~0.5).
        block_flop_rate=9.0e10,
        block_mem_bw=2.5e10,
        block_overhead=1.1e-6,
        # NVSHMEM one-sided: NVLink intra-node, Slingshot inter-node
        # (300 GB/s vs 12.5 GB/s per direction per GPU, §4.2.2).
        nvshmem_alpha_intra=1.4e-6,
        nvshmem_alpha_inter=3.0e-6,
        nvshmem_beta_intra=1 / 300.0e9,
        nvshmem_beta_inter=1 / 12.5e9,
        gpus_per_node=4,
        u_penalty=1.35,
    ),
)

CRUSHER_CPU = Machine(
    name="crusher-cpu",
    net=NetworkModel(alpha_intra=8.0e-7, alpha_inter=2.0e-6,
                     beta_intra=1 / 6.0e9, beta_inter=1 / 6.0e9,
                     send_overhead=5.0e-7, recv_overhead=5.0e-7),
    # EPYC 7A53 share per GCD-rank (8 ranks/node): slightly more CPU
    # bandwidth per rank than Perlmutter's 4-rank split.
    cpu=CpuModel(flop_rate=5.0e10, mem_bw=2.5e10, op_overhead=1.1e-6),
    ranks_per_node=8,
)

CRUSHER_GPU = Machine(
    name="crusher-gpu",
    net=CRUSHER_CPU.net,
    cpu=CRUSHER_CPU.cpu,
    ranks_per_node=8,
    gpu=GpuModel(
        num_sms=110,
        block_flop_rate=9.0e10,
        # MI250X GCD has higher HBM bandwidth but the paper observes much
        # lower SpTRSV CPU->GPU gains on Crusher (1.6-2.9x vs 4-6.5x);
        # modeled as lower small-op efficiency + higher launch overhead on
        # the ROCm stack.
        block_mem_bw=1.2e10,
        block_overhead=2.4e-6,
        # ROC-SHMEM absent: Crusher GPU runs use Px=Py=1 only (no intra-grid
        # comm), but the fields keep the interface uniform.
        nvshmem_alpha_intra=2.0e-6,
        nvshmem_alpha_inter=4.0e-6,
        nvshmem_beta_intra=1 / 200.0e9,
        nvshmem_beta_inter=1 / 12.5e9,
        gpus_per_node=8,
        u_penalty=1.4,
        one_sided_subcomms=False,
    ),
)

# The paper's future-work projection (§3.4): "Adding support for MPI
# subcommunicators in ROC-SHMEM will enable significantly improved
# scalability of SpTRSV for large numbers of GPU nodes."  Same hardware,
# one-sided sub-communicators enabled.
CRUSHER_GPU_FUTURE = Machine(
    name="crusher-gpu-future",
    net=CRUSHER_GPU.net,
    cpu=CRUSHER_GPU.cpu,
    ranks_per_node=CRUSHER_GPU.ranks_per_node,
    gpu=replace(CRUSHER_GPU.gpu, one_sided_subcomms=True),
)

MACHINES: dict[str, Machine] = {
    m.name: m
    for m in (CORI_HASWELL, PERLMUTTER_CPU, PERLMUTTER_GPU,
              CRUSHER_CPU, CRUSHER_GPU, CRUSHER_GPU_FUTURE)
}
