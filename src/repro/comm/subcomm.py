"""Sub-communicators: MPI-style groups over the simulated runtime.

The 3D algorithms are naturally expressed over sub-communicators (each 2D
grid, each z-line of peer ranks); the core solvers pass explicit member
lists, and this class wraps the same idea in an MPI-like API — group rank
translation plus collectives bound to the group — for user code built on
the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.comm import collectives
from repro.comm.simulator import RankCtx


@dataclass(frozen=True)
class Subcomm:
    """An ordered group of global ranks with MPI-like collectives.

    All members must construct the same ``Subcomm`` (same members, same
    ``name``) and call the same operation for a collective to complete —
    exactly MPI's communicator semantics.
    """

    members: tuple[int, ...]
    name: str = "subcomm"

    def __post_init__(self):
        m = tuple(sorted(self.members))
        if len(set(m)) != len(m) or not m:
            raise ValueError("members must be a non-empty set of ranks")
        object.__setattr__(self, "members", m)

    @property
    def size(self) -> int:
        return len(self.members)

    def rank_of(self, global_rank: int) -> int:
        """Group rank of a global rank (raises if not a member)."""
        try:
            return self.members.index(global_rank)
        except ValueError:
            raise KeyError(f"rank {global_rank} not in {self.name}")

    def global_of(self, group_rank: int) -> int:
        return self.members[group_rank]

    def contains(self, global_rank: int) -> bool:
        return global_rank in self.members

    # -- collectives (generators; drive with `yield from`) -----------------

    def _tag(self, op: str, tag: Any) -> Any:
        return (self.name, op, tag)

    def bcast(self, ctx: RankCtx, value: Any, root: int = 0, tag: Any = 0,
              category: str = "comm", sync: str | None = None):
        """Broadcast from group rank ``root``."""
        return collectives.bcast(ctx, list(self.members),
                                 self.global_of(root), value,
                                 tag=self._tag("b", tag), category=category,
                                 sync=sync)

    def reduce(self, ctx: RankCtx, value: np.ndarray, root: int = 0,
               op: Callable = np.add, tag: Any = 0, category: str = "comm",
               sync: str | None = None):
        return collectives.reduce(ctx, list(self.members),
                                  self.global_of(root), value, op=op,
                                  tag=self._tag("r", tag), category=category,
                                  sync=sync)

    def allreduce(self, ctx: RankCtx, value: np.ndarray,
                  op: Callable = np.add, tag: Any = 0,
                  category: str = "comm", sync: str | None = None):
        return collectives.allreduce(ctx, list(self.members), value, op=op,
                                     tag=self._tag("a", tag),
                                     category=category, sync=sync)

    def barrier(self, ctx: RankCtx, tag: Any = 0, category: str = "comm",
                sync: str | None = None):
        return collectives.barrier(ctx, list(self.members),
                                   tag=self._tag("bar", tag),
                                   category=category, sync=sync)

    def split(self, color_of: Callable[[int], int]) -> dict[int, "Subcomm"]:
        """MPI_Comm_split: partition members by color into sub-groups."""
        groups: dict[int, list[int]] = {}
        for r in self.members:
            groups.setdefault(color_of(r), []).append(r)
        return {color: Subcomm(tuple(rs), name=f"{self.name}/{color}")
                for color, rs in groups.items()}


def grid_subcomms(grid) -> tuple[list[Subcomm], list[Subcomm]]:
    """The two communicator families of the 3D layout.

    Returns ``(xy_comms, z_comms)``: one communicator per 2D grid (the
    intra-grid family) and one per (i, j) position across grids (the
    z-line family the sparse allreduce runs over).
    """
    xy = [Subcomm(tuple(grid.grid_ranks(z)), name=f"xy{z}")
          for z in range(grid.pz)]
    zs = []
    for i in range(grid.px):
        for j in range(grid.py):
            zs.append(Subcomm(tuple(grid.rank_of(i, j, z)
                                    for z in range(grid.pz)),
                              name=f"z{i}_{j}"))
    return xy, zs
