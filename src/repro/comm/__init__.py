"""Simulated distributed-memory runtime.

This package replaces MPI for the reproduction: ranks are generator
coroutines scheduled by a deterministic discrete-event simulator
(:mod:`repro.comm.simulator`).  Messages carry *real* numpy payloads, so the
distributed algorithms are functionally exact, while per-rank virtual clocks
driven by α-β network models and CPU/GPU roofline cost models
(:mod:`repro.comm.costmodel`) provide the performance dimension the paper's
experiments measure.
"""

from repro.comm.collectives import allreduce, barrier, bcast, reduce
from repro.comm.costmodel import (
    CORI_HASWELL,
    CRUSHER_CPU,
    CRUSHER_GPU,
    CRUSHER_GPU_FUTURE,
    MACHINES,
    PERLMUTTER_CPU,
    PERLMUTTER_GPU,
    CpuModel,
    GpuModel,
    Machine,
    NetworkModel,
    gemm_bytes,
    gemm_flops,
)
from repro.comm.faults import (
    ChecksumError,
    CommFaultError,
    FaultEvent,
    FaultPlan,
    FaultSchedule,
    FaultRule,
    RecvTimeout,
    ReliableTransport,
    StallError,
)
from repro.comm.simulator import (ANY, AmbiguousRecvError, DeadlockError,
                                  RankCtx, RMAConflictError, RMAError,
                                  SimResult, Simulator, TraceEvent,
                                  UnappliedPut)
from repro.comm.trees import CommTree, binary_tree, flat_tree

__all__ = [
    "Simulator",
    "RankCtx",
    "SimResult",
    "TraceEvent",
    "ANY",
    "AmbiguousRecvError",
    "DeadlockError",
    "RMAError",
    "RMAConflictError",
    "UnappliedPut",
    "CommFaultError",
    "RecvTimeout",
    "ChecksumError",
    "StallError",
    "FaultPlan",
    "FaultSchedule",
    "FaultRule",
    "FaultEvent",
    "ReliableTransport",
    "bcast",
    "reduce",
    "allreduce",
    "barrier",
    "CommTree",
    "binary_tree",
    "flat_tree",
    "Machine",
    "NetworkModel",
    "CpuModel",
    "GpuModel",
    "gemm_flops",
    "gemm_bytes",
    "MACHINES",
    "CORI_HASWELL",
    "PERLMUTTER_CPU",
    "PERLMUTTER_GPU",
    "CRUSHER_CPU",
    "CRUSHER_GPU",
    "CRUSHER_GPU_FUTURE",
]
