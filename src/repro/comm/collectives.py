"""Collective operations built on the simulator's point-to-point layer.

Each collective is a generator meant to be driven with ``yield from`` inside
a rank function; ``members`` is the explicit participant list (the
sub-communicator), so arbitrary subsets of the 3D grid can synchronize —
this is how the per-grid and cross-grid communicators of the paper are
expressed without a full MPI communicator implementation.

All participating ranks must call the same collective with the same
``members`` and ``tag``.

Every collective accepts ``sync=``: a label naming the inter-grid
synchronization point its messages belong to in a profiled run
(``Simulator(metrics=...)``; see ``docs/OBSERVABILITY.md``).  The previous
label is restored on return, so scoping nests correctly.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from repro.comm.simulator import RankCtx


def _binomial_peers(idx: int, size: int) -> tuple[int, list[int]]:
    """Binomial-tree parent and children for position ``idx`` of ``size``."""
    parent = -1
    children = []
    mask = 1
    while mask < size:
        if idx & mask:
            parent = idx & ~mask
            break
        mask <<= 1
    peer_mask = 1
    while peer_mask < size:
        if idx & (peer_mask - 1) == 0 and not idx & peer_mask:
            c = idx | peer_mask
            if c < size:
                children.append(c)
        peer_mask <<= 1
    return parent, children


def bcast(ctx: RankCtx, members: list[int], root: int, value: Any,
          tag: Any = "bcast", category: str = "comm",
          timeout: float | None = None, sync: str | None = None):
    """Broadcast ``value`` from ``root`` to all ``members``; returns it.

    ``timeout`` bounds each internal receive (virtual seconds); on expiry
    :class:`~repro.comm.faults.RecvTimeout` surfaces at the caller's
    ``yield from``, so lossy-fabric runs fail diagnosably instead of
    hanging the whole collective.
    """
    members = sorted(members)
    size = len(members)
    ridx = members.index(root)
    prev_sync = ctx.sync
    if sync is not None:
        ctx.set_sync(sync)
    # Rotate so the root is position 0 of the binomial tree.
    idx = (members.index(ctx.rank) - ridx) % size
    parent, children = _binomial_peers(idx, size)
    if parent >= 0:
        _, _, value = yield ctx.recv(src=members[(parent + ridx) % size],
                                     tag=tag, category=category,
                                     timeout=timeout)
    for c in children:
        yield ctx.send(members[(c + ridx) % size], value, tag=tag,
                       category=category)
    if sync is not None:
        ctx.set_sync(prev_sync)
    return value


def reduce(ctx: RankCtx, members: list[int], root: int, value: np.ndarray,
           op: Callable = np.add, tag: Any = "reduce",
           category: str = "comm", timeout: float | None = None,
           sync: str | None = None):
    """Reduce ``value`` over ``members`` onto ``root``.

    Returns the reduced array on the root, the (partially reduced) local
    value elsewhere.  ``timeout`` bounds each internal receive (see
    :func:`bcast`).
    """
    members = sorted(members)
    size = len(members)
    ridx = members.index(root)
    prev_sync = ctx.sync
    if sync is not None:
        ctx.set_sync(sync)
    idx = (members.index(ctx.rank) - ridx) % size
    parent, children = _binomial_peers(idx, size)
    acc = np.array(value, copy=True)
    # Receive from children in ascending order: smaller subtrees finish first.
    for c in children:
        _, _, v = yield ctx.recv(src=members[(c + ridx) % size], tag=tag,
                                 category=category, timeout=timeout)
        acc = op(acc, v)
    if parent >= 0:
        yield ctx.send(members[(parent + ridx) % size], acc, tag=tag,
                       category=category)
    if sync is not None:
        ctx.set_sync(prev_sync)
    return acc


def allreduce(ctx: RankCtx, members: list[int], value: np.ndarray,
              op: Callable = np.add, tag: Any = "allreduce",
              category: str = "comm", timeout: float | None = None,
              sync: str | None = None):
    """Reduce-then-broadcast allreduce over ``members``; returns the sum.

    ``timeout`` bounds each internal receive (see :func:`bcast`).
    """
    members = sorted(members)
    root = members[0]
    acc = yield from reduce(ctx, members, root, value, op=op,
                            tag=(tag, "r"), category=category,
                            timeout=timeout, sync=sync)
    out = yield from bcast(ctx, members, root, acc, tag=(tag, "b"),
                           category=category, timeout=timeout, sync=sync)
    return out


def barrier(ctx: RankCtx, members: list[int], tag: Any = "barrier",
            category: str = "comm", timeout: float | None = None,
            sync: str | None = None):
    """Synchronize ``members``: nobody returns before everyone arrived.

    ``timeout`` bounds each internal receive (see :func:`bcast`).
    """
    token = np.zeros(1)
    yield from allreduce(ctx, members, token, tag=(tag, "bar"),
                         category=category, timeout=timeout, sync=sync)
