"""Chaos harness: sweep seeded fault rates across the paper's solvers.

The harness drives :class:`~repro.core.solver.SpTRSVSolver` solves under a
grid of deterministic fault plans (drop / duplicate / delay / reorder /
corrupt / crash at several rates and seeds) and classifies every run.  It
exists to check — and keep checking, in CI — the resilience invariant:

    every run either returns a correct solution (residual below the
    tolerance) or raises a diagnosable *typed* error — never a silent
    wrong answer.

Because fault plans and the simulator are deterministic, a failing sweep
cell is exactly reproducible from its ``(algorithm, kind, rate, seed)``
coordinates.

Typical use::

    from repro.comm.chaos import chaos_sweep
    report = chaos_sweep({"new3d": solver3d, "2d": solver2d})
    report.verify()          # raises AssertionError on any breach
    print(report.summary())
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.comm.faults import ChecksumError, CommFaultError, FaultPlan
from repro.comm.simulator import DeadlockError
from repro.core.solver import Resilience, ResilienceExhausted, SpTRSVSolver
from repro.matrices import make_rhs
from repro.numfact import solve_residual

# Errors considered "diagnosable": raising one of these under faults is a
# legitimate outcome (the run failed loudly).  Anything else escaping a
# resilient solve is an invariant breach.
TYPED_ERRORS = (CommFaultError, DeadlockError, ResilienceExhausted)

DEFAULT_KINDS = ("drop", "duplicate", "delay", "reorder", "corrupt", "crash")
DEFAULT_RATES = (0.0, 0.02, 0.05, 0.10)


@dataclass
class ChaosRun:
    """Outcome of one sweep cell."""

    algorithm: str
    kind: str
    rate: float
    seed: int
    status: str             # "exact" | "recovered" | "degraded" |
                            # "typed-error" | "silent-wrong" | "unexpected"
    tier: str | None = None
    error: str | None = None
    residual: float | None = None
    virtual_time: float = 0.0
    fault_events: int = 0

    @property
    def ok(self) -> bool:
        return self.status in ("exact", "recovered", "degraded",
                               "typed-error")


@dataclass
class ChaosReport:
    """All sweep cells plus the invariant checker."""

    runs: list[ChaosRun]
    residual_tol: float

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for r in self.runs:
            out[r.status] = out.get(r.status, 0) + 1
        return out

    def breaches(self) -> list[ChaosRun]:
        return [r for r in self.runs if not r.ok]

    def verify(self) -> "ChaosReport":
        """Assert the chaos invariant; returns self for chaining."""
        bad = self.breaches()
        assert not bad, (
            "chaos invariant violated (silent wrong answer or untyped "
            "error) in {} run(s): {}".format(
                len(bad),
                "; ".join(f"{r.algorithm}/{r.kind}@{r.rate}/seed{r.seed}"
                          f" -> {r.status} ({r.error or r.residual})"
                          for r in bad[:5])))
        return self

    def summary(self) -> str:
        lines = [f"chaos sweep: {len(self.runs)} runs, "
                 f"tol {self.residual_tol:.0e}",
                 f"{'alg':>10s} {'kind':>10s} {'rate':>6s} {'seed':>4s} "
                 f"{'status':>12s} {'tier':>10s} {'faults':>6s}"]
        for r in self.runs:
            lines.append(
                f"{r.algorithm:>10s} {r.kind:>10s} {r.rate:6.2f} "
                f"{r.seed:4d} {r.status:>12s} {r.tier or '-':>10s} "
                f"{r.fault_events:6d}")
        lines.append("totals: " + ", ".join(
            f"{k}={v}" for k, v in sorted(self.counts().items())))
        return "\n".join(lines)


def plan_for(kind: str, rate: float, seed: int, nranks: int,
             makespan: float) -> FaultPlan | None:
    """Deterministic fault plan for one chaos cell (None when lossless).

    Public entry point shared by the solver-level sweep below and the
    service-level adversarial scenarios (``repro.scenarios`` builds its
    :class:`~repro.comm.faults.FaultSchedule` phases through here), so
    both tiers speak the same ``(kind, rate, seed)`` coordinates.
    ``makespan`` scales the time-valued faults: crash instants are placed
    inside it, delay spikes are ~10% of it.
    """
    if rate <= 0.0:
        return None
    if kind == "crash":
        # Interpret the rate as the fraction of ranks to crash, at
        # staggered points inside the expected run.
        ncrash = max(1, int(round(rate * nranks)))
        ranks = [1 + (seed + i * 7) % max(1, nranks - 1)
                 for i in range(ncrash)]
        crash = {r: makespan * (0.2 + 0.5 * i / max(1, ncrash))
                 for i, r in enumerate(dict.fromkeys(ranks))}
        return FaultPlan(seed=seed, crash=crash)
    if kind == "delay":
        # Delay spikes of ~10x the run's own scale stress reordering and
        # timeout logic without changing correctness by themselves.
        return FaultPlan.uniform(seed=seed, delay=rate,
                                 delay_seconds=makespan * 0.1)
    if kind in ("drop", "duplicate", "corrupt", "reorder"):
        return FaultPlan.uniform(seed=seed, **{kind: rate})
    raise ValueError(f"unknown fault kind {kind!r}")


_plan_for = plan_for  # compatibility alias for pre-scenario callers


def _classify(out, requested: str, residual: float, tol: float) -> ChaosRun:
    rr = out.resilience
    if residual > tol:
        status = "silent-wrong"
    elif rr is None or (rr.tier == requested and len(rr.attempts) == 1):
        status = "exact"
    elif rr.tier == requested:
        status = "recovered"
    else:
        status = "degraded"
    # Sum fault events over every attempt: the winning tier is often the
    # fault-free reference solve, which alone would report zero.
    nfaults = (sum(a.fault_events for a in rr.attempts) if rr is not None
               else len(out.report.sim.fault_events or []))
    return ChaosRun(algorithm=requested, kind="", rate=0.0, seed=0,
                    status=status, tier=None if rr is None else rr.tier,
                    residual=residual,
                    virtual_time=(rr.total_time if rr is not None
                                  else out.report.total_time),
                    fault_events=nfaults)


def chaos_sweep(solvers: dict[str, SpTRSVSolver],
                b: np.ndarray | None = None,
                kinds: tuple[str, ...] = DEFAULT_KINDS,
                rates: tuple[float, ...] = DEFAULT_RATES,
                seeds: tuple[int, ...] = (0,),
                resilience: Resilience | None = None,
                nrhs: int = 1) -> ChaosReport:
    """Run the full fault sweep and classify every cell.

    ``solvers`` maps algorithm name (``"new3d"``, ``"baseline3d"``,
    ``"2d"``) to the solver instance to run it on — ``"2d"`` needs a
    ``pz == 1`` solver, the 3D algorithms a ``pz > 1`` one; solvers may be
    shared between entries.  ``resilience`` defaults to checksums on,
    reliable transport off, residual tolerance ``1e-10``.
    """
    if resilience is None:
        resilience = Resilience(residual_tol=1e-10)
    tol = resilience.residual_tol
    runs: list[ChaosRun] = []

    for alg, solver in solvers.items():
        rhs = make_rhs(solver.n, nrhs) if b is None else b
        # Lossless reference run: calibrates crash/delay times and proves
        # the fault-free path before chaos starts.
        base = solver.solve(rhs, algorithm=alg)
        base_res = solve_residual(solver.A, base.x, rhs)
        assert base_res <= tol, (
            f"lossless {alg} solve already fails: residual {base_res:.2e}")
        makespan = base.report.total_time

        for kind in kinds:
            for rate in rates:
                for seed in seeds:
                    # crc32, not hash(): immune to PYTHONHASHSEED, so the
                    # same cell gets the same plan in every process.
                    cell_seed = (seed * 7919
                                 + zlib.crc32(f"{alg}/{kind}".encode()) % 1000)
                    plan = plan_for(kind, rate, cell_seed,
                                    solver.grid.nranks, makespan)
                    try:
                        out = solver.solve(rhs, algorithm=alg, faults=plan,
                                           resilience=resilience)
                        residual = solve_residual(solver.A, out.x, rhs)
                        run = _classify(out, alg, residual, tol)
                    except TYPED_ERRORS as e:
                        run = ChaosRun(alg, kind, rate, seed, "typed-error",
                                       error=type(e).__name__,
                                       virtual_time=float(
                                           getattr(e, "sim_time", 0.0)))
                    except Exception as e:  # pragma: no cover - breach path
                        run = ChaosRun(alg, kind, rate, seed, "unexpected",
                                       error=f"{type(e).__name__}: {e}")
                    run.kind, run.rate, run.seed = kind, rate, seed
                    run.algorithm = alg
                    runs.append(run)
    return ChaosReport(runs=runs, residual_tol=tol)


def scenario_sweep(names=None, seed: int | None = None):
    """Service-level chaos: run the named adversarial scenarios.

    Generalizes the solver-level sweep above to the serving tier — each
    scenario drives a full :class:`~repro.serve.SolveService` run through
    a declared attack or degradation and checks its degradation contract.
    Returns ``{scenario name: ScenarioReport}``.  Thin bridge over
    :func:`repro.scenarios.run_all` (lazy import keeps this module free
    of the serving stack for solver-only callers).
    """
    from repro.scenarios import run_all

    return run_all(names=names, seed=seed)
