"""Broadcast/reduction communication trees.

The paper's intra-grid latency optimization (§3.3, from Liu et al. CSC'18)
replaces flat fan-out/fan-in with *binary* trees, cutting the root's message
count from ``O(p)`` to ``O(1)`` and the depth to ``O(log p)``.  A
:class:`CommTree` describes one tree over an explicit participant list
(e.g. the process rows owning nonzero blocks in one supernode column); the
same shape is used for broadcasts (root → leaves) and reductions (leaves →
root, edges reversed).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CommTree:
    """A rooted tree over ``members`` (global rank ids, root first).

    ``parent_idx[i]`` / ``children_idx[i]`` use positions within
    ``members``; position 0 is the root.
    """

    members: tuple[int, ...]
    parent_idx: tuple[int, ...]
    children_idx: tuple[tuple[int, ...], ...]

    @property
    def root(self) -> int:
        return self.members[0]

    @property
    def size(self) -> int:
        return len(self.members)

    def contains(self, rank: int) -> bool:
        return rank in self.members

    def _pos(self, rank: int) -> int:
        try:
            return self.members.index(rank)
        except ValueError:
            raise KeyError(f"rank {rank} is not a member of this tree")

    def parent(self, rank: int) -> int | None:
        """Parent rank of ``rank`` (None for the root)."""
        i = self._pos(rank)
        return None if i == 0 else self.members[self.parent_idx[i]]

    def children(self, rank: int) -> tuple[int, ...]:
        """Child ranks of ``rank`` (broadcast targets / reduction sources)."""
        return tuple(self.members[j] for j in self.children_idx[self._pos(rank)])

    def nchildren(self, rank: int) -> int:
        return len(self.children_idx[self._pos(rank)])

    def depth(self) -> int:
        """Longest root-to-leaf path length in edges."""
        d = [0] * self.size
        best = 0
        for i in range(1, self.size):
            d[i] = d[self.parent_idx[i]] + 1
            best = max(best, d[i])
        return best

    def max_fanout(self) -> int:
        return max((len(c) for c in self.children_idx), default=0)

    def edges(self) -> list[tuple[int, int]]:
        """All ``(parent_rank, child_rank)`` edges.

        One broadcast over the tree sends exactly one message per edge (a
        reduction the same, reversed), so ``len(tree.edges())`` is the
        hand-countable message total the observability tests check the
        recorded metrics against.
        """
        return [(self.members[self.parent_idx[i]], self.members[i])
                for i in range(1, self.size)]


def _build(members: list[int], arity: int) -> CommTree:
    m = len(members)
    parent = [0] * m
    children: list[list[int]] = [[] for _ in range(m)]
    for i in range(1, m):
        p = (i - 1) // arity
        parent[i] = p
        children[p].append(i)
    return CommTree(tuple(members), tuple(parent),
                    tuple(tuple(c) for c in children))


def binary_tree(members: list[int], root: int) -> CommTree:
    """Binary (arity-2) heap-shaped tree rooted at ``root``.

    Participants keep their relative order (after rotating the root to the
    front), making the shape deterministic across ranks that compute it
    independently.
    """
    return _ordered_tree(members, root, 2)


def flat_tree(members: list[int], root: int) -> CommTree:
    """Flat fan-out: the root sends to / receives from everyone directly.

    This is the unoptimized baseline the paper's binary trees replace.
    """
    return _ordered_tree(members, root, max(1, len(members) - 1))


def _ordered_tree(members: list[int], root: int, arity: int) -> CommTree:
    members = list(members)
    if len(set(members)) != len(members):
        raise ValueError("tree members must be distinct")
    if root not in members:
        raise ValueError(f"root {root} not in members")
    members.remove(root)
    members.sort()
    return _build([root] + members, arity)
