"""Command-line interface: solve, tune and inspect from the shell.

Examples
--------
Solve a suite matrix on a 2x2x4 grid of the Cori model::

    python -m repro solve --matrix s2D9pt2048 --grid 2x2x4

GPU solve of a Matrix Market file on the Perlmutter model::

    python -m repro solve --matrix path/to/A.mtx --grid 4x1x4 \
        --machine perlmutter-gpu --device gpu

Autotune the grid shape for 16 ranks::

    python -m repro tune --matrix nlpkkt80 --ranks 16

Profile a solve — per-phase tables, sync points, critical path::

    python -m repro profile --matrix s2D9pt2048 --grid 2x2x4 \
        --algorithm new3d --trace /tmp/solve.json

Inspect a matrix's pipeline statistics::

    python -m repro info --matrix ldoor --scale small

Serve a seeded request stream through the batching solve service, save the
trace, and replay it (byte-identical SLO report both times)::

    python -m repro serve --matrices s2D9pt2048,nlpkkt80 --requests 32 \
        --rate 2000 --grid 1x1x2 --save-trace /tmp/wl.json
    python -m repro serve --replay /tmp/wl.json --grid 1x1x2

Run the same stream through a sharded 4-worker fleet, crashing worker 1
mid-run (the FleetReport is byte-identical on replay)::

    python -m repro fleet --workers 4 --requests 64 --zipf 1.0 \
        --crash 1@0.004:0.009 --json

Differentially fuzz the solver and serving stacks (seeded, replayable;
failures are shrunk and written to tests/corpus/)::

    python -m repro fuzz --cases 50 --seed 0
    python -m repro fuzz --replay tests/corpus/case-0123456789ab.json

Run the adversarial-scenario suite and check every degradation contract
(reports are deterministic; CI diffs two runs for bit-equality)::

    python -m repro scenarios --list
    python -m repro scenarios --run flash-crowd
    python -m repro scenarios --sweep --json
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from repro.comm.costmodel import MACHINES
from repro.core import SpTRSVSolver
from repro.matrices import PAPER_MATRICES, get_matrix, load_matrix_market, make_rhs
from repro.numfact import solve_residual
from repro.perf import autotune_grid, critical_path, format_report, roofline


def _load_matrix(spec: str, scale: str):
    """A suite name (see ``repro.matrices.PAPER_MATRICES``) or a .mtx path."""
    if spec in PAPER_MATRICES:
        return get_matrix(spec, scale)
    if os.path.exists(spec):
        return load_matrix_market(spec)
    raise SystemExit(
        f"error: {spec!r} is neither a suite matrix "
        f"({', '.join(sorted(PAPER_MATRICES))}) nor an existing .mtx file")


def _parse_grid(text: str) -> tuple[int, int, int]:
    try:
        px, py, pz = (int(t) for t in text.lower().split("x"))
        return px, py, pz
    except ValueError:
        raise SystemExit(f"error: --grid must look like 2x2x4, got {text!r}")


def _machine(name: str):
    try:
        return MACHINES[name]
    except KeyError:
        raise SystemExit(
            f"error: unknown machine {name!r}; "
            f"available: {', '.join(sorted(MACHINES))}")


def cmd_solve(args) -> int:
    A = _load_matrix(args.matrix, args.scale)
    px, py, pz = _parse_grid(args.grid)
    machine = _machine(args.machine)
    solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                          max_supernode=args.max_supernode,
                          symbolic_mode=args.symbolic)
    b = make_rhs(A.shape[0], args.nrhs)
    out = solver.solve(b, algorithm=args.algorithm, device=args.device,
                       tree_kind=args.tree_kind)
    res = solve_residual(A, out.x, b)
    print(f"matrix {args.matrix}: n={A.shape[0]}, nnz={A.nnz}, "
          f"machine={machine.name}")
    print(format_report(out.report))
    print(f"  residual           : {res:10.3e}")
    return 0 if res < 1e-8 else 1


def cmd_profile(args) -> int:
    """Run one profiled solve and print the observability report."""
    from repro.obs import format_profile

    A = _load_matrix(args.matrix, args.scale)
    px, py, pz = _parse_grid(args.grid)
    machine = _machine(args.machine)
    solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                          max_supernode=args.max_supernode,
                          symbolic_mode=args.symbolic)
    b = make_rhs(A.shape[0], args.nrhs)
    out = solver.solve(b, algorithm=args.algorithm, device=args.device,
                       tree_kind=args.tree_kind, profile=True,
                       trace=bool(args.trace) and args.device == "cpu")
    res = solve_residual(A, out.x, b)
    reg = out.report.metrics
    print(f"matrix {args.matrix}: n={A.shape[0]}, nnz={A.nnz}, "
          f"machine={machine.name}, algorithm={args.algorithm} "
          f"({args.device})")
    print(format_profile(reg))
    print(f"residual: {res:.3e}")
    if args.trace:
        if args.device != "cpu":
            print("note: --trace is CPU-only (the GPU dataflow phases have "
                  "no event timeline); skipped")
        else:
            from repro.comm.trace_export import to_chrome_trace

            nev = to_chrome_trace(out.report.sim, args.trace, metrics=reg)
            print(f"wrote {nev} trace events to {args.trace}")
    return 0 if res < 1e-8 else 1


def cmd_tune(args) -> int:
    A = _load_matrix(args.matrix, args.scale)
    machine = _machine(args.machine)
    result = autotune_grid(A, P=args.ranks, machine=machine,
                           algorithm=args.algorithm, device=args.device,
                           nrhs=args.nrhs, max_supernode=args.max_supernode,
                           symbolic_mode=args.symbolic)
    print(f"autotune {args.matrix} on {machine.name}, P={args.ranks}, "
          f"device={args.device}:")
    print(result.format())
    px, py, pz = result.best
    print(f"\nbest: --grid {px}x{py}x{pz}  "
          f"({result.best_time * 1e3:.3f} ms simulated)")
    return 0


def cmd_info(args) -> int:
    A = _load_matrix(args.matrix, args.scale)
    machine = _machine(args.machine)
    solver = SpTRSVSolver(A, 1, 1, 1, machine=machine,
                          max_supernode=args.max_supernode,
                          symbolic_mode=args.symbolic)
    from repro.matrices import matrix_fingerprint

    sym = solver.sym
    lu = solver.lu
    rf = roofline(lu, nrhs=args.nrhs)
    cp = critical_path(lu, machine, nrhs=args.nrhs)
    fp = matrix_fingerprint(A)
    print(f"matrix {args.matrix} (scale={args.scale})")
    print(f"  fingerprint        : {fp.short()} "
          f"(structure {fp.structure[:16]}, values {fp.numeric[:16]})")
    print(f"  n                  : {A.shape[0]}")
    print(f"  nnz(A)             : {A.nnz}")
    print(f"  nnz(LU)            : {sym.nnz_LU}")
    print(f"  density            : {sym.density():.4%}")
    print(f"  supernodes         : {lu.nsup}")
    print(f"  L blocks           : {len(lu.Lblocks)}")
    print(f"  solve flops (nrhs={args.nrhs}): {rf.flops:.3e}")
    print(f"  solve bytes        : {rf.bytes:.3e}")
    print(f"  arithmetic intensity: {rf.intensity:.4f} flop/byte "
          f"({rf.bound(machine)}-bound on {machine.name})")
    print(f"  critical path      : {cp.time * 1e3:.3f} ms over "
          f"{cp.length} supernode solves")
    from repro.matrices import matrix_stats
    from repro.numfact import skyline_stats, stability_report
    from repro.perf import level_profile

    st = matrix_stats(A)
    prof = level_profile(lu, "L")
    sky = skyline_stats(lu)
    stab = stability_report(solver.A_perm, lu)
    print(f"  bandwidth / max deg: {st.bandwidth} / {st.max_degree}")
    print(f"  DAG levels (L)     : {prof.depth} deep, max width "
          f"{prof.max_width}, avg parallelism {prof.avg_parallelism:.1f}")
    print(f"  skyline compression: {sky.compression:.2%} of full U blocks")
    print(f"  pivot growth       : {stab.growth_factor:.3g} "
          f"({'stable' if stab.is_stable() else 'UNSTABLE'})")
    for w in stab.warnings():
        print(f"  warning            : {w}")
    return 0


def cmd_replay(args) -> int:
    """Inspect (or demonstrate) the compile-once schedule-replay path."""
    from repro.replay import replay_info, replay_state

    A = _load_matrix(args.matrix, args.scale)
    px, py, pz = _parse_grid(args.grid)
    machine = _machine(args.machine)
    solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                          max_supernode=args.max_supernode,
                          symbolic_mode=args.symbolic)
    info = replay_info(solver, algorithm=args.algorithm,
                       tree_kind=args.tree_kind, nrhs=args.nrhs)
    print(f"replay program: {args.matrix} (scale={args.scale}), "
          f"algorithm={info['algorithm']} (impl={info['impl']}, "
          f"tree={info['tree_kind']}), grid {info['grid']}, "
          f"machine={info['machine']}, nrhs={info['nrhs']}")
    ops = ", ".join(f"{k}={v}" for k, v in sorted(info["op_counts"].items()))
    print(f"  instructions       : {info['instructions']} "
          f"({info['kernels']} kernels; {ops})")
    print(f"  registers          : {info['registers']}")
    print(f"  messages           : {info['messages']} "
          f"({info['message_bytes']} B precomputed routes)")
    print(f"  tape ops           : {info['tape_ops']}")
    print(f"  est. virtual time  : {info['est_virtual_time'] * 1e3:.3f} ms")
    if args.info:
        return 0

    import time

    # replay_info above already compiled + recorded on `solver`; time the
    # recording path honestly on a fresh solver.
    solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                          max_supernode=args.max_supernode,
                          symbolic_mode=args.symbolic)
    b = make_rhs(A.shape[0], args.nrhs)
    # The demo deliberately reports *host* wall time: the virtual clocks
    # are bit-identical either way, so wall time is the only axis where
    # the compiled path differs from the recording path.
    t0 = time.perf_counter()            # repro: allow[RPR004]
    cold = solver.solve(b, algorithm=args.algorithm,
                        tree_kind=args.tree_kind, replay=True)
    t_cold = time.perf_counter() - t0   # repro: allow[RPR004]
    t0 = time.perf_counter()            # repro: allow[RPR004]
    hot = solver.solve(b, algorithm=args.algorithm,
                       tree_kind=args.tree_kind, replay=True)
    t_hot = time.perf_counter() - t0    # repro: allow[RPR004]
    identical = (np.array_equal(cold.x, hot.x)
                 and np.array_equal(cold.report.sim.clocks,
                                    hot.report.sim.clocks))
    st = replay_state(solver).stats
    print(f"  recording solve    : {t_cold * 1e3:.2f} ms wall "
          f"(compile + simulate + validate)")
    print(f"  compiled replay    : {t_hot * 1e3:.2f} ms wall "
          f"({t_cold / t_hot:.2f}x vs recording)")
    print(f"  bit-identical      : {identical} "
          f"(compiles={st.compiles}, records={st.records}, "
          f"replays={st.replays})")
    return 0 if identical else 1


def cmd_serve(args) -> int:
    """Run (or replay) a workload through the batching solve service."""
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        SolveService,
        Workload,
        WorkloadSpec,
        format_slo,
        generate_workload,
    )

    px, py, pz = _parse_grid(args.grid)
    if args.replay:
        wl = Workload.load(args.replay)
    else:
        names = [m.strip() for m in args.matrices.split(",") if m.strip()]
        unknown = [m for m in names if m not in PAPER_MATRICES]
        if unknown:
            raise SystemExit(
                f"error: unknown suite matrices {', '.join(unknown)}; "
                f"available: {', '.join(sorted(PAPER_MATRICES))}")
        spec = WorkloadSpec(seed=args.seed, rate=args.rate,
                            n_requests=args.requests,
                            mix=tuple((m, args.scale, 1.0) for m in names),
                            deadline=args.deadline)
        wl = generate_workload(spec)
        if args.save_trace:
            wl.save(args.save_trace)
            print(f"wrote {len(wl)} requests to {args.save_trace}")

    faults = resilience = None
    if args.drop > 0:
        from repro.comm.faults import FaultPlan
        from repro.core.solver import Resilience

        faults = FaultPlan.uniform(seed=args.seed, drop=args.drop)
        resilience = Resilience(reliable=True)

    svc = SolveService(
        ServiceConfig(px=px, py=py, pz=pz, machine=args.machine,
                      algorithm=args.algorithm, device=args.device,
                      max_supernode=args.max_supernode,
                      symbolic_mode=args.symbolic, planner=args.planner),
        BatchPolicy(max_batch=args.max_batch, max_wait=args.max_wait,
                    queue_bound=args.queue_bound),
        faults=faults, resilience=resilience,
        profile=args.profile, keep_solutions=False)
    res = svc.run(wl)
    if args.json:
        print(res.slo.to_json())
    else:
        title = (f"SLO report — {len(wl)} requests, grid {px}x{py}x{pz}, "
                 f"{args.algorithm} on {args.machine}, "
                 f"max-batch {args.max_batch}")
        print(format_slo(res.slo, title=title))
    return 0


def _parse_crash(text: str, worker_ceiling: int | None = None):
    """Parse ``W@TC:TR[,W@TC:TR...]`` into a worker-crash FaultSchedule.

    Every malformed window dies *here*, at parse time, with a typed
    message — never deep inside the fleet run: the worker index must
    name a worker the fleet can ever have (below ``worker_ceiling`` when
    given — the autoscaler ceiling, else the initial fleet size), times
    must be finite and non-negative, and recovery must strictly follow
    the crash.
    """
    import math

    from repro.comm.faults import FaultPlan, FaultSchedule

    phases = []
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        try:
            w_text, window = part.split("@")
            tc_text, tr_text = window.split(":")
            w, tc, tr = int(w_text), float(tc_text), float(tr_text)
        except ValueError:
            raise SystemExit(
                f"error: --crash windows look like 1@0.004:0.009 "
                f"(worker@t_crash:t_recover), got {part!r}")
        if w < 0:
            raise SystemExit(
                f"error: --crash worker index must be >= 0, got {part!r}")
        if worker_ceiling is not None and w >= worker_ceiling:
            raise SystemExit(
                f"error: --crash names worker {w} but the fleet only ever "
                f"has workers 0..{worker_ceiling - 1} (raise --workers or "
                f"--max-workers), got {part!r}")
        if not (math.isfinite(tc) and math.isfinite(tr)) or tc < 0:
            raise SystemExit(
                f"error: --crash times must be finite and >= 0, "
                f"got {part!r}")
        if tr <= tc:
            raise SystemExit(
                f"error: --crash recovery must follow the crash, got {part!r}")
        phases.append((tc, tr, FaultPlan.uniform(seed=w, crash={w: tc})))
    if not phases:
        raise SystemExit(f"error: --crash got no windows in {text!r}")
    return FaultSchedule(tuple(sorted(phases)))


def cmd_fleet(args) -> int:
    """Run a Zipf-skewed workload through a sharded multi-worker fleet."""
    from repro.fleet import (
        AutoscalerPolicy,
        FleetConfig,
        FleetService,
        format_fleet,
    )
    from repro.serve import (
        BatchPolicy,
        ServiceConfig,
        WorkloadSpec,
        generate_bulk_workload,
        generate_workload,
        zipf_mix,
    )

    px, py, pz = _parse_grid(args.grid)
    names = [m.strip() for m in args.matrices.split(",") if m.strip()]
    unknown = [m for m in names if m not in PAPER_MATRICES]
    if unknown:
        raise SystemExit(
            f"error: unknown suite matrices {', '.join(unknown)}; "
            f"available: {', '.join(sorted(PAPER_MATRICES))}")
    spec = WorkloadSpec(seed=args.seed, rate=args.rate,
                        n_requests=args.requests,
                        mix=zipf_mix(names, args.scale, s=args.zipf),
                        deadline=args.deadline)
    gen = generate_bulk_workload if args.bulk else generate_workload
    wl = gen(spec)

    ceiling = args.max_workers if args.autoscale else args.workers
    crash_schedule = (_parse_crash(args.crash, worker_ceiling=ceiling)
                      if args.crash else None)
    autoscaler = None
    if args.autoscale:
        autoscaler = AutoscalerPolicy(
            period=args.scale_period,
            min_workers=min(args.workers, args.max_workers),
            max_workers=args.max_workers)
    fs = FleetService(
        FleetConfig(workers=args.workers, vnodes=args.vnodes,
                    replication=args.replication,
                    ring_seed=args.ring_seed,
                    admit_bound=args.admit_bound),
        ServiceConfig(px=px, py=py, pz=pz, machine=args.machine,
                      algorithm=args.algorithm,
                      max_supernode=args.max_supernode,
                      symbolic_mode=args.symbolic),
        BatchPolicy(max_batch=args.max_batch, max_wait=args.max_wait,
                    queue_bound=args.queue_bound),
        crash_schedule=crash_schedule, autoscaler=autoscaler)
    res = fs.run(wl)
    if args.out:
        res.report.save(args.out)
        print(f"wrote FleetReport to {args.out}")
    if args.json:
        print(res.report.to_json())
    elif not args.out:
        title = (f"fleet report — {len(wl)} requests, {args.workers} workers, "
                 f"grid {px}x{py}x{pz}, {args.algorithm} on {args.machine}")
        print(format_fleet(res.report, title=title))
    return 0


def cmd_fuzz(args) -> int:
    """Differential fuzzing: random configs, cross-checked paths."""
    from repro.check import FuzzCase, fuzz, run_case, shrink, write_repro

    if args.replay:
        with open(args.replay) as f:
            case = FuzzCase.from_json(f.read())
        result = run_case(case)
        print(result.summary())
        return 0 if result.ok else 1

    def progress(result):
        status = "ok" if result.ok else "FAIL"
        print(f"  [{result.case.index + 1:3d}/{args.cases}] {status:4s} "
              f"{result.case.describe()} ({result.checks} checks)")

    report = fuzz(cases=args.cases, seed=args.seed,
                  progress=progress if args.verbose else None)
    print(report.summary())
    if report.ok:
        return 0
    for failing in report.failures:
        case = failing.case

        def is_failing(cand):
            return not run_case(cand).ok

        small = shrink(case, is_failing)
        path = write_repro(small, args.corpus)
        print(f"shrunk case {case.index} "
              f"({case.describe()} -> {small.describe()}); "
              f"repro written to {path}")
    return 1


def cmd_scenarios(args) -> int:
    """Adversarial scenarios: list, run one, or sweep the catalog."""
    import json as _json

    from repro.scenarios import get_scenario, run_scenario, scenario_names

    if args.list:
        from repro.scenarios import CATALOG

        for name, sc in CATALOG.items():
            tags = f" [{', '.join(sc.tags)}]" if sc.tags else ""
            print(f"{name:<20s} seed={sc.seed:<6d}{tags}\n"
                  f"    {sc.summary}")
        return 0

    names = [args.run] if args.run else scenario_names()
    reports = {n: run_scenario(get_scenario(n), seed=args.seed)
               for n in names}
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for name, rep in reports.items():
            path = os.path.join(args.out, f"scenario-{name}.json")
            with open(path, "w") as f:
                f.write(rep.to_json() + "\n")
        print(f"wrote {len(reports)} ScenarioReport file(s) to {args.out}")
    if args.json:
        print(_json.dumps(
            {n: _json.loads(r.to_json()) for n, r in reports.items()},
            indent=1, sort_keys=True))
    else:
        for rep in reports.values():
            print(rep.summary_line())
            for c in rep.checks:
                if not c["passed"]:
                    print(f"    FAIL {c['check']}: {c['detail']}")
            if rep.error:
                print(f"    ERROR {rep.error}")
    failed = [n for n, r in reports.items() if not r.passed]
    if failed:
        print(f"scenarios: {len(failed)} contract(s) violated: "
              f"{', '.join(failed)}")
        return 1
    print(f"scenarios: {len(reports)} degradation contract(s) hold")
    return 0


def cmd_analyze(args) -> int:
    """Static schedule verification: extract, then certify or reject."""
    from repro.analyze import (
        allreduce_schedule,
        expected_syncs,
        gpu_schedules,
        solver_schedule,
        verify_rma,
        verify_schedule,
    )

    A = _load_matrix(args.matrix, args.scale)
    machine = _machine(args.machine)

    def check(sched, expect_syncs=None) -> bool:
        rep = verify_schedule(sched)
        ok = rep.ok
        status = "certified" if ok else "REJECTED"
        extra = ""
        if expect_syncs is not None:
            got = rep.nsyncs
            if got != expect_syncs:
                ok = False
                status = "REJECTED"
            extra = f", syncs {got} (expected {expect_syncs})"
        rma_rep = None
        if sched.puts():
            rma_rep = verify_rma(sched)
            if not rma_rep.ok:
                ok = False
                status = "REJECTED"
            res = rma_rep.resources
            extra += (f", rma {res.total_put_bytes}B/"
                      f"{res.nepochs} epoch(s)/"
                      f"peak {max(res.peak_bytes, default=0)}B")
        print(f"  [{status}] {sched.name or 'schedule'}: "
              f"{sched.nranks} ranks, {len(sched.sends())} msgs{extra}")
        if not ok:
            for line in rep.findings():
                print(f"      {line}")
            if rma_rep is not None:
                for line in rma_rep.findings():
                    print(f"      {line}")
        return ok

    if args.sweep:
        # Fig.-4-style sweep: the paper's algorithm pair across the Pz axis,
        # plus the planner's newer backends, the 2D solver, the standalone
        # allreduces, and the GPU dataflow.
        configs = [(2, 2, pz, alg)
                   for pz in (1, 2, 4)
                   for alg in ("new3d", "baseline3d")]
        configs.append((2, 2, 1, "2d"))
        configs += [(2, 2, pz, alg)
                    for pz in (2, 4)
                    for alg in ("sparse_allreduce_v2", "ca_trsm",
                                "onesided_put")]
        configs.append((2, 2, 1, "ca_trsm"))
    else:
        px, py, pz = _parse_grid(args.grid)
        configs = [(px, py, pz, args.algorithm)]

    bad = 0
    for px, py, pz, alg in configs:
        solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                              max_supernode=args.max_supernode,
                              symbolic_mode=args.symbolic)
        sched = solver_schedule(solver, algorithm=alg, nrhs=args.nrhs)
        if not check(sched, expect_syncs=expected_syncs(alg, pz)):
            bad += 1
    if args.sweep:
        solver = SpTRSVSolver(A, 2, 2, 4, machine=machine,
                              max_supernode=args.max_supernode,
                              symbolic_mode=args.symbolic)
        if not check(allreduce_schedule(solver, nrhs=args.nrhs),
                     expect_syncs=1):
            bad += 1
        gpu_solver = SpTRSVSolver(A, 2, 1, 2, machine=machine,
                                  max_supernode=args.max_supernode,
                                  symbolic_mode=args.symbolic)
        for sched in gpu_schedules(gpu_solver, nrhs=args.nrhs).values():
            if not check(sched):
                bad += 1
    if bad:
        print(f"analyze: {bad} schedule(s) rejected")
        return 1
    print("analyze: all schedules certified deadlock-free, "
          "match-deterministic, and race-free on one-sided epochs")
    return 0


def cmd_planner(args) -> int:
    """Print the cost-model planner's decision log for a grid sweep.

    One line per grid: the picked backend plus every candidate's predicted
    virtual time.  The log is deterministic for fixed inputs — CI runs this
    twice and diffs the ``--out`` files byte-for-byte.
    """
    from repro.planner import Planner

    A = _load_matrix(args.matrix, args.scale)
    machine = _machine(args.machine)
    planner = Planner()
    lines = []
    for g in (s.strip() for s in args.grids.split(",")):
        if not g:
            continue
        px, py, pz = _parse_grid(g)
        solver = SpTRSVSolver(A, px, py, pz, machine=machine,
                              max_supernode=args.max_supernode,
                              symbolic_mode=args.symbolic)
        d = planner.choose(solver, nrhs=args.nrhs)
        lines.append(f"{args.matrix}/{args.scale} grid {px}x{py}x{pz} "
                     f"nrhs={args.nrhs} machine={machine.name}: "
                     f"{d.summary()}")
    text = "\n".join(lines)
    print(text)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text + "\n")
    return 0


def cmd_lint(args) -> int:
    """Custom AST lint over the runtime (rules RPR001-RPR008)."""
    from repro.analyze import run_lint

    try:
        findings = run_lint(args.paths)
    except ValueError as e:
        raise SystemExit(f"error: {e}")
    for f in findings:
        print(f.describe())
    if findings:
        rules = sorted({f.rule for f in findings})
        print(f"lint: {len(findings)} finding(s) [{', '.join(rules)}]")
        return 1
    print("lint: clean")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SC'23 3D SpTRSV reproduction — solve / tune / info")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p):
        p.add_argument("--matrix", required=True,
                       help="suite matrix name or MatrixMarket file")
        p.add_argument("--scale", default="small",
                       choices=["tiny", "small", "medium"],
                       help="suite matrix scale (ignored for files)")
        p.add_argument("--machine", default="cori-haswell",
                       help=f"one of: {', '.join(sorted(MACHINES))}")
        p.add_argument("--nrhs", type=int, default=1)
        p.add_argument("--max-supernode", type=int, default=16)
        p.add_argument("--symbolic", default="detect",
                       choices=["detect", "fixed"])

    p = sub.add_parser("solve", help="run one distributed solve")
    common(p)
    p.add_argument("--grid", default="1x1x1", help="PxxPyxPz, e.g. 2x2x4")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d", "2d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm", "auto"])
    p.add_argument("--device", default="cpu", choices=["cpu", "gpu"])
    p.add_argument("--tree-kind", default=None,
                   choices=["auto", "binary", "flat"])
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser("profile",
                       help="profiled solve: per-phase metrics, inter-grid "
                            "sync points, critical path")
    common(p)
    p.add_argument("--grid", default="1x1x1", help="PxxPyxPz, e.g. 2x2x4")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d", "2d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm", "auto"])
    p.add_argument("--device", default="cpu", choices=["cpu", "gpu"])
    p.add_argument("--tree-kind", default=None,
                   choices=["auto", "binary", "flat"])
    p.add_argument("--trace", default=None, metavar="OUT.json",
                   help="also write an annotated Chrome trace (flow arrows "
                        "per message; open in chrome://tracing or Perfetto)")
    p.set_defaults(func=cmd_profile)

    p = sub.add_parser("tune", help="autotune the grid shape for P ranks")
    common(p)
    p.add_argument("--ranks", type=int, required=True, help="total ranks P")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm"])
    p.add_argument("--device", default="cpu", choices=["cpu", "gpu"])
    p.set_defaults(func=cmd_tune)

    p = sub.add_parser("info", help="pipeline and roofline statistics")
    common(p)
    p.set_defaults(func=cmd_info)

    p = sub.add_parser(
        "replay",
        help="compile a schedule-replay program and summarize its artifacts")
    common(p)
    p.add_argument("--grid", default="1x1x4", help="PxxPyxPz, e.g. 2x2x4")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d", "2d"])
    p.add_argument("--tree-kind", default=None,
                   choices=["auto", "binary", "flat"])
    p.add_argument("--info", action="store_true",
                   help="print the compiled-artifact summary only (skip the "
                        "recording-vs-replay demonstration solve)")
    p.set_defaults(func=cmd_replay)

    p = sub.add_parser(
        "serve",
        help="run a request workload through the batching solve service")
    p.add_argument("--matrices", default="s2D9pt2048",
                   help="comma-separated suite matrix mix (equal weights)")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "small", "medium"])
    p.add_argument("--requests", type=int, default=32,
                   help="number of generated requests")
    p.add_argument("--rate", type=float, default=2000.0,
                   help="mean arrival rate (requests per virtual second)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--deadline", type=float, default=0.1,
                   help="relative completion budget per request (virtual s)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="batch width cap (nrhs per dispatched solve)")
    p.add_argument("--max-wait", type=float, default=1e-3,
                   help="max age of the oldest queued request (virtual s)")
    p.add_argument("--queue-bound", type=int, default=256,
                   help="admission-control queue depth bound")
    p.add_argument("--grid", default="1x1x2", help="PxxPyxPz, e.g. 1x1x4")
    p.add_argument("--machine", default="cori-haswell",
                   help=f"one of: {', '.join(sorted(MACHINES))}")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm", "auto"])
    p.add_argument("--planner", action="store_true",
                   help="let the cost-model planner pick the backend per "
                        "batch (same as --algorithm auto; CPU only)")
    p.add_argument("--device", default="cpu", choices=["cpu", "gpu"])
    p.add_argument("--max-supernode", type=int, default=16)
    p.add_argument("--symbolic", default="detect",
                   choices=["detect", "fixed"])
    p.add_argument("--drop", type=float, default=0.0,
                   help="serve over a lossy fabric: per-message drop "
                        "probability (enables the resilience envelope)")
    p.add_argument("--profile", action="store_true",
                   help="aggregate the per-batch comm metrics into the "
                        "report")
    p.add_argument("--save-trace", default=None, metavar="OUT.json",
                   help="save the generated workload as a replayable trace")
    p.add_argument("--replay", default=None, metavar="TRACE.json",
                   help="replay a saved trace instead of generating")
    p.add_argument("--json", action="store_true",
                   help="print the SLO report as JSON")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "fleet",
        help="run a Zipf-skewed workload through a sharded multi-worker "
             "fleet with crash/recovery and optional autoscaling")
    p.add_argument("--matrices",
                   default="s2D9pt2048,nlpkkt80,ldoor",
                   help="comma-separated suite matrix mix (Zipf weights by "
                        "listed order)")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "small", "medium"])
    p.add_argument("--requests", type=int, default=64,
                   help="number of generated requests")
    p.add_argument("--rate", type=float, default=2000.0,
                   help="mean arrival rate (requests per virtual second)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--deadline", type=float, default=0.1,
                   help="relative completion budget per request (virtual s)")
    p.add_argument("--zipf", type=float, default=1.0,
                   help="Zipf skew exponent s over the matrix mix")
    p.add_argument("--bulk", action="store_true",
                   help="use the vectorized bulk generator (scales to "
                        "millions of requests; different trace than the "
                        "scalar generator)")
    p.add_argument("--workers", type=int, default=2,
                   help="initial fleet size")
    p.add_argument("--vnodes", type=int, default=64,
                   help="virtual nodes per worker on the hash ring")
    p.add_argument("--replication", type=int, default=1,
                   help="distinct owners per matrix fingerprint")
    p.add_argument("--ring-seed", type=int, default=0,
                   help="seed for the ring's vnode placement")
    p.add_argument("--admit-bound", type=int, default=None,
                   help="front-door bound on summed logical queue depth")
    p.add_argument("--crash", default=None, metavar="W@TC:TR[,...]",
                   help="worker crash windows, e.g. 1@0.004:0.009 crashes "
                        "worker 1 at t=4ms and recovers it (cold cache) at "
                        "t=9ms")
    p.add_argument("--autoscale", action="store_true",
                   help="enable the queue-depth/latency autoscaler")
    p.add_argument("--max-workers", type=int, default=8,
                   help="autoscaler ceiling")
    p.add_argument("--scale-period", type=float, default=2e-3,
                   help="autoscaler tick period (virtual s)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="batch width cap (nrhs per dispatched solve)")
    p.add_argument("--max-wait", type=float, default=1e-3,
                   help="max age of the oldest queued request (virtual s)")
    p.add_argument("--queue-bound", type=int, default=256,
                   help="per-worker admission-control queue depth bound")
    p.add_argument("--grid", default="1x1x2", help="PxxPyxPz, e.g. 1x1x4")
    p.add_argument("--machine", default="cori-haswell",
                   help=f"one of: {', '.join(sorted(MACHINES))}")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm"])
    p.add_argument("--max-supernode", type=int, default=16)
    p.add_argument("--symbolic", default="detect",
                   choices=["detect", "fixed"])
    p.add_argument("--json", action="store_true",
                   help="print the FleetReport as JSON")
    p.add_argument("--out", default=None, metavar="OUT.json",
                   help="write the FleetReport JSON to a file")
    p.set_defaults(func=cmd_fleet)

    p = sub.add_parser(
        "scenarios",
        help="run seeded adversarial scenarios against the solve service "
             "and check their degradation contracts")
    p.add_argument("--list", action="store_true",
                   help="list the catalog and exit")
    p.add_argument("--run", default=None, metavar="NAME",
                   help="run one named scenario instead of the full sweep")
    p.add_argument("--sweep", action="store_true",
                   help="run every catalog scenario (the default when "
                        "neither --list nor --run is given)")
    p.add_argument("--seed", type=int, default=None,
                   help="override the declared seed (soft SLO bounds are "
                        "calibrated to the declared seed; hard guarantees "
                        "must hold at any)")
    p.add_argument("--json", action="store_true",
                   help="print ScenarioReports as one JSON document")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="also write one ScenarioReport JSON file per "
                        "scenario into DIR")
    p.set_defaults(func=cmd_scenarios)

    p = sub.add_parser(
        "analyze",
        help="statically verify communication schedules (deadlock freedom, "
             "match determinism, sync counts)")
    p.add_argument("--matrix", default="s2D9pt2048",
                   help="suite matrix name or MatrixMarket file")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "small", "medium"],
                   help="suite matrix scale (ignored for files)")
    p.add_argument("--machine", default="cori-haswell",
                   help=f"one of: {', '.join(sorted(MACHINES))}")
    p.add_argument("--nrhs", type=int, default=1)
    p.add_argument("--max-supernode", type=int, default=16)
    p.add_argument("--symbolic", default="detect",
                   choices=["detect", "fixed"])
    p.add_argument("--grid", default="2x2x4", help="PxxPyxPz, e.g. 2x2x4")
    p.add_argument("--algorithm", default="new3d",
                   choices=["new3d", "baseline3d", "2d",
                            "sparse_allreduce_v2", "onesided_put",
                            "ca_trsm"])
    p.add_argument("--sweep", action="store_true",
                   help="verify the standard sweep (every CPU backend "
                        "across Pz, the 2D solver, the standalone "
                        "allreduces, and the GPU dataflow) instead of one "
                        "config")
    p.set_defaults(func=cmd_analyze)

    p = sub.add_parser(
        "planner",
        help="price every eligible backend with the cost model and print "
             "the planner's decision log for a grid sweep")
    p.add_argument("--matrix", default="s2D9pt2048",
                   help="suite matrix name or MatrixMarket file")
    p.add_argument("--scale", default="tiny",
                   choices=["tiny", "small", "medium"],
                   help="suite matrix scale (ignored for files)")
    p.add_argument("--machine", default="cori-haswell",
                   help=f"one of: {', '.join(sorted(MACHINES))}")
    p.add_argument("--nrhs", type=int, default=1)
    p.add_argument("--max-supernode", type=int, default=16)
    p.add_argument("--symbolic", default="detect",
                   choices=["detect", "fixed"])
    p.add_argument("--grids", default="2x2x1,2x1x2,2x2x2,1x2x4",
                   help="comma-separated PxxPyxPz list to plan over")
    p.add_argument("--out", default=None, metavar="OUT.log",
                   help="also write the decision log to a file (CI diffs "
                        "two runs for bit-equality)")
    p.set_defaults(func=cmd_planner)

    p = sub.add_parser(
        "lint",
        help="custom AST lint over the runtime (rules RPR001-RPR008)")
    p.add_argument("paths", nargs="+",
                   help="Python files or directories to lint")
    p.set_defaults(func=cmd_lint)

    p = sub.add_parser(
        "fuzz",
        help="differentially fuzz the solver and serving stacks")
    p.add_argument("--cases", type=int, default=50,
                   help="number of random cases to draw and run")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed; same seed => same case stream")
    p.add_argument("--replay", default=None, metavar="CASE.json",
                   help="replay one corpus case file instead of drawing")
    p.add_argument("--corpus", default=os.path.join("tests", "corpus"),
                   help="where shrunk failing cases are written")
    p.add_argument("--verbose", action="store_true",
                   help="print each case as it finishes")
    p.set_defaults(func=cmd_fuzz)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
