"""Grid-shape autotuner: pick (Px, Py, Pz) for a matrix and rank budget.

The paper sweeps grid shapes by hand; related work (Ahmad et al.) learns
the best configuration.  Since this reproduction's machines are simulated,
the tuner can simply *measure* every admissible shape — an exhaustive,
deterministic autotuner — and report the winner with the full table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.comm.costmodel import CORI_HASWELL, Machine
from repro.core.solver import SpTRSVSolver
from repro.matrices import make_rhs
from repro.numfact import lu_factorize
from repro.ordering import nested_dissection
from repro.symbolic import symbolic_factor
from repro.util import ilog2, is_power_of_two


@dataclass(frozen=True)
class TuneResult:
    """Outcome of an autotuning sweep."""

    best: tuple[int, int, int]           # (px, py, pz)
    best_time: float
    table: tuple[tuple[tuple[int, int, int], float], ...]  # all configs

    def format(self) -> str:
        lines = [f"{'Px':>4s} {'Py':>4s} {'Pz':>4s} {'time[ms]':>10s}"]
        for (px, py, pz), t in self.table:
            star = "  <- best" if (px, py, pz) == self.best else ""
            lines.append(f"{px:4d} {py:4d} {pz:4d} {t * 1e3:10.3f}{star}")
        return "\n".join(lines)


def _grid_candidates(P: int, device: str,
                     multi_gpu_ok: bool) -> list[tuple[int, int, int]]:
    """All (px, py, pz) with px*py*pz == P, pz a power of two.

    GPU solves require Py == 1 (and Px == 1 without one-sided
    sub-communicator support).
    """
    out = []
    pz = 1
    while pz <= P:
        if P % pz == 0:
            pxy = P // pz
            for px in range(1, pxy + 1):
                if pxy % px:
                    continue
                py = pxy // px
                if device == "gpu":
                    if py != 1:
                        continue
                    if px > 1 and not multi_gpu_ok:
                        continue
                out.append((px, py, pz))
        pz *= 2
    return out


def autotune_grid(A: sp.spmatrix, P: int, machine: Machine = CORI_HASWELL,
                  algorithm: str = "new3d", device: str = "cpu",
                  nrhs: int = 1, max_supernode: int = 16,
                  symbolic_mode: str = "detect",
                  max_pz: int | None = None) -> TuneResult:
    """Measure every admissible (Px, Py, Pz) with Px*Py*Pz = P and return
    the fastest, factoring the matrix once and reusing the pipeline.
    """
    if P < 1:
        raise ValueError("P must be >= 1")
    # Largest admissible pz: largest power of two dividing P (capped).
    pz_max = 1
    while P % (pz_max * 2) == 0:
        pz_max *= 2
    if max_pz is not None:
        if not is_power_of_two(max_pz):
            raise ValueError("max_pz must be a power of two")
        pz_max = min(pz_max, max_pz)
    depth = ilog2(pz_max)

    n = A.shape[0]
    tree = nested_dissection(A, leaf_size=max(8, n // max(4 * pz_max, 8)),
                             min_depth=depth)
    Ap = sp.csr_matrix(A)[tree.perm][:, tree.perm]
    sym = symbolic_factor(Ap, max_supernode=max_supernode,
                          boundaries=tree.boundaries(), mode=symbolic_mode)
    lu = lu_factorize(Ap, sym.partition)
    b = make_rhs(n, nrhs, kind="manufactured")

    multi_gpu_ok = (machine.gpu is not None
                    and getattr(machine.gpu, "one_sided_subcomms", True))
    table = []
    for px, py, pz in _grid_candidates(P, device, multi_gpu_ok):
        if pz > pz_max:
            continue
        solver = SpTRSVSolver.from_pipeline(A, tree, sym, lu, px, py, pz,
                                            machine=machine)
        out = solver.solve(b, algorithm=algorithm, device=device)
        table.append(((px, py, pz), out.report.total_time))
    if not table:
        raise ValueError(f"no admissible grid for P={P}, device={device!r}")
    table.sort(key=lambda row: row[1])
    best, best_time = table[0]
    return TuneResult(best=best, best_time=best_time,
                      table=tuple(sorted(table, key=lambda r: r[0])))
