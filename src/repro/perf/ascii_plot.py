"""Dependency-free ASCII charts for the benchmark reports.

The benchmark harness renders each paper figure's series as text charts in
``benchmarks/results/`` so the scaling shapes are eyeballable without any
plotting stack.
"""

from __future__ import annotations

import math


def ascii_line_chart(series: dict[str, list[tuple[float, float]]],
                     width: int = 56, height: int = 14,
                     title: str = "", logy: bool = True,
                     xlabel: str = "", ylabel: str = "") -> str:
    """Render (x, y) series as an ASCII chart.

    Each series gets a marker character; x positions are mapped by rank
    order of the union of x values (the sweeps are log-spaced), y is log-
    scaled by default (runtimes).
    """
    if not series or all(not pts for pts in series.values()):
        return f"{title}\n(no data)"
    markers = "ox+*#@%&"
    xs = sorted({x for pts in series.values() for x, _ in pts})
    ys = [y for pts in series.values() for _, y in pts if y > 0]
    if not ys:
        return f"{title}\n(no positive data)"
    y_lo, y_hi = min(ys), max(ys)
    if logy:
        f_lo, f_hi = math.log10(y_lo), math.log10(y_hi)
    else:
        f_lo, f_hi = y_lo, y_hi
    if f_hi - f_lo < 1e-12:
        f_hi = f_lo + 1.0

    def col(x: float) -> int:
        i = xs.index(x)
        return 0 if len(xs) == 1 else round(i * (width - 1) / (len(xs) - 1))

    def row(y: float) -> int:
        f = math.log10(y) if logy else y
        frac = (f - f_lo) / (f_hi - f_lo)
        return (height - 1) - round(frac * (height - 1))

    canvas = [[" "] * width for _ in range(height)]
    for k, (label, pts) in enumerate(sorted(series.items())):
        m = markers[k % len(markers)]
        for x, y in pts:
            if y > 0:
                canvas[row(y)][col(x)] = m

    lines = []
    if title:
        lines.append(title)
    top = f"{y_hi:.3g}"
    bot = f"{y_lo:.3g}"
    pad = max(len(top), len(bot))
    for i, r in enumerate(canvas):
        label = top if i == 0 else (bot if i == height - 1 else "")
        lines.append(f"{label:>{pad}s} |{''.join(r)}|")
    axis = " " * pad + " +" + "-" * width + "+"
    lines.append(axis)
    xticks = " " * (pad + 2)
    tick_text = "  ".join(f"{x:g}" for x in xs)
    lines.append(xticks + tick_text[:width])
    if xlabel or ylabel:
        lines.append(" " * (pad + 2) + f"x: {xlabel}   y: {ylabel}"
                     + ("  (log)" if logy else ""))
    legend = "   ".join(f"{markers[k % len(markers)]}={label}"
                        for k, (label, _) in enumerate(sorted(series.items())))
    lines.append(" " * (pad + 2) + legend)
    return "\n".join(lines)


def ascii_bar_chart(values: dict[str, float], width: int = 40,
                    title: str = "", unit: str = "") -> str:
    """Horizontal bar chart of labeled values."""
    if not values:
        return f"{title}\n(no data)"
    vmax = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        n = 0 if vmax <= 0 else round(v / vmax * width)
        lines.append(f"{label:<{label_w}s} |{'#' * n:<{width}s}| "
                     f"{v:.3g}{unit}")
    return "\n".join(lines)
