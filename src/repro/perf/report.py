"""Human-readable formatting of solver performance reports."""

from __future__ import annotations

from repro.core.solver import PerfReport, SolveOutcome


def format_report(report: PerfReport) -> str:
    """Multi-line summary of one solve's timing, paper-style."""
    bd = report.breakdown()
    g = report.grid
    lines = [
        f"algorithm {report.algorithm} on {g.px}x{g.py}x{g.pz} "
        f"({g.nranks} ranks), nrhs={report.nrhs}",
        f"  total (makespan)   : {report.total_time * 1e3:10.3f} ms",
        f"  mean FP            : {bd['fp'] * 1e6:10.1f} us/rank",
        f"  mean XY-comm       : {bd['xy_comm'] * 1e6:10.1f} us/rank",
        f"  mean Z-comm        : {bd['z_comm'] * 1e6:10.1f} us/rank",
        f"  L-solve (max rank) : {report.per_rank(phase='l').max() * 1e3:10.3f} ms",
        f"  U-solve (max rank) : {report.per_rank(phase='u').max() * 1e3:10.3f} ms",
        f"  messages intra/inter: {report.message_count('xy')} / "
        f"{report.message_count('z')}",
        f"  bytes intra/inter  : {report.message_bytes('xy'):.0f} / "
        f"{report.message_bytes('z'):.0f}",
    ]
    return "\n".join(lines)


def compare_outcomes(outcomes: dict[str, SolveOutcome]) -> str:
    """One-line-per-variant comparison table (fastest marked)."""
    if not outcomes:
        return "(no outcomes)"
    best = min(outcomes, key=lambda k: outcomes[k].report.total_time)
    t_best = outcomes[best].report.total_time
    width = max(len(k) for k in outcomes)
    lines = [f"{'variant':<{width}s} {'time[ms]':>10s} {'vs best':>8s}"]
    for label, out in sorted(outcomes.items(),
                             key=lambda kv: kv[1].report.total_time):
        t = out.report.total_time
        mark = "  <- best" if label == best else ""
        lines.append(f"{label:<{width}s} {t * 1e3:10.3f} "
                     f"{t / t_best:7.2f}x{mark}")
    return "\n".join(lines)
