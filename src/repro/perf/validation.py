"""Self-validation of the performance simulation.

A simulated time is only trustworthy if it respects the hard bounds its
own cost model implies.  :func:`validate_simulation` checks a solve
against two independent lower bounds — the DAG critical path (latency
side) and the roofline floor at the solve's rank count (throughput side) —
and reports the slack.  The test suite runs this on every algorithm; users
can run it on their own configurations to catch modeling mistakes after
changing machine parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.solver import SolveOutcome, SpTRSVSolver
from repro.perf.critical_path import critical_path
from repro.perf.roofline import roofline


@dataclass(frozen=True)
class ValidationReport:
    """Bounds check of one simulated solve."""

    simulated: float
    critical_path_bound: float
    roofline_bound: float

    @property
    def ok(self) -> bool:
        """The simulated time respects both lower bounds."""
        lo = max(self.critical_path_bound, self.roofline_bound)
        return self.simulated >= lo * 0.999

    @property
    def slack(self) -> float:
        """simulated / max(bounds): >= 1 when consistent; close to 1 means
        the solve runs near its model's limit (little communication/idle
        overhead left to optimize)."""
        lo = max(self.critical_path_bound, self.roofline_bound)
        return self.simulated / lo if lo > 0 else np.inf

    def summary(self) -> str:
        return (f"simulated={self.simulated * 1e3:.3f} ms, "
                f"critical-path>={self.critical_path_bound * 1e3:.3f} ms, "
                f"roofline>={self.roofline_bound * 1e3:.3f} ms, "
                f"slack={self.slack:.2f}x "
                f"({'consistent' if self.ok else 'VIOLATES BOUNDS'})")


def validate_simulation(solver: SpTRSVSolver, outcome: SolveOutcome,
                        device: str = "cpu") -> ValidationReport:
    """Check ``outcome`` against the solver's model lower bounds."""
    machine = solver.machine
    nrhs = outcome.report.nrhs
    cp = critical_path(solver.lu, machine, nrhs=nrhs, device=device)
    rf = roofline(solver.lu, nrhs=nrhs)
    ranks = solver.grid.nranks
    return ValidationReport(
        simulated=outcome.report.total_time,
        critical_path_bound=cp.time,
        roofline_bound=(rf.time_floor(machine, ranks=ranks)
                        if device == "cpu" else 0.0),
    )
