"""DAG level-set analysis: how much parallelism a solve exposes.

Shared-memory and GPU SpTRSV implementations (the paper's §1 survey, and
Algorithm 4's one-block-per-column schedule) live or die by the DAG's level
structure: supernodes at the same level are independent, so the level
*widths* bound concurrency and the level *count* bounds the schedule
length.  This module computes the profile for the L phase (the U phase is
its mirror under symmetric patterns).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.numfact.lu import BlockSparseLU


@dataclass(frozen=True)
class LevelProfile:
    """Level-set structure of the supernode DAG."""

    levels: np.ndarray     # level index per supernode
    widths: np.ndarray     # supernodes per level

    @property
    def depth(self) -> int:
        """Number of levels = length of the longest dependency chain."""
        return len(self.widths)

    @property
    def max_width(self) -> int:
        return int(self.widths.max()) if len(self.widths) else 0

    @property
    def avg_parallelism(self) -> float:
        """Mean available concurrency: supernodes / depth."""
        return float(self.widths.sum() / self.depth) if self.depth else 0.0


def level_profile(lu: BlockSparseLU, phase: str = "L") -> LevelProfile:
    """Level sets of the L (or U) solve DAG at supernode granularity.

    ``level[K] = 1 + max(level[J])`` over the producers J that K consumes;
    sources are level 0.
    """
    nsup = lu.nsup
    levels = np.zeros(nsup, dtype=np.int64)
    if phase == "L":
        # Producers of K: columns J < K with L(K, J) != 0; iterate producers
        # and push to their consumers (l_blockrows).
        for J in range(nsup):
            lj = levels[J] + 1
            for I in lu.l_blockrows[J]:
                I = int(I)
                if lj > levels[I]:
                    levels[I] = lj
    elif phase == "U":
        # Transpose adjacency: x(J) updates rows K < J with U(K, J) != 0.
        from repro.core.plan2d import u_blockrows

        uadj = u_blockrows(lu)
        for J in range(nsup - 1, -1, -1):
            lj = levels[J] + 1
            for K in uadj[J]:
                K = int(K)
                if lj > levels[K]:
                    levels[K] = lj
    else:
        raise ValueError(f"phase must be 'L' or 'U', got {phase!r}")
    widths = np.bincount(levels) if nsup else np.zeros(0, dtype=np.int64)
    return LevelProfile(levels=levels, widths=widths)
