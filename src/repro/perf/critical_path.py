"""Critical-path analysis of the SpTRSV task DAG.

The solve's dependency DAG (supernode ``I`` cannot be solved before every
supernode ``K`` adjacent to it in L/U has been solved and its block applied)
bounds any schedule from below: no machine, with any number of ranks, can
finish faster than the longest weighted dependency chain.  This is the
analysis Ding et al. use to predict SpTRSV scalability; here it doubles as
a sanity bound for the simulator — every simulated solve must take at least
the critical path of its own cost model, which the test suite asserts.

Edge weights are the *minimum* work to propagate a dependency: the
producer's diagonal solve plus the single consumer block's GEMV.  Real
schedules (CPU ranks applying several blocks sequentially, GPU thread
blocks processing whole columns) can only be slower, so the bound is strict
for both devices.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.costmodel import Machine, gemm_bytes, gemm_flops
from repro.core.plan2d import u_blockrows
from repro.numfact.lu import BlockSparseLU


@dataclass(frozen=True)
class CriticalPath:
    """Longest weighted dependency chain of an L+U solve.

    ``time`` is the chain's summed task time (seconds); ``length`` the
    number of supernode solves on it; ``l_time``/``u_time`` split the two
    phases (the U chain can only start after the L phase delivers its
    right-hand side).
    """

    time: float
    length: int
    l_time: float
    u_time: float


def _phase_cp(nsup: int, adj, diag_cost, apply_cost) -> tuple[float, int]:
    """Longest chain via DP in topological (ascending-index) order.

    ``adj[K]`` lists consumers of K with strictly larger index, so the
    ascending loop is topological; the caller reverses indices for the U
    phase.
    """
    dist = [0.0] * nsup
    hops = [0] * nsup
    best = (0.0, 0)
    for K in range(nsup):
        ready = dist[K] + diag_cost(K)
        h = hops[K] + 1
        if (ready, h) > best:
            best = (ready, h)
        for I in adj[K]:
            I = int(I)
            t = ready + apply_cost(I, K)
            if t > dist[I]:
                dist[I] = t
                hops[I] = h
    return best


def critical_path(lu: BlockSparseLU, machine: Machine, nrhs: int = 1,
                  device: str = "cpu") -> CriticalPath:
    """Critical path of the L-solve followed by the U-solve."""
    part = lu.partition
    nsup = lu.nsup

    if device == "cpu":
        def op(fl, by, u=False):
            return machine.cpu.op_time(fl, by)
    elif device == "gpu":
        if machine.gpu is None:
            raise ValueError(f"machine {machine.name!r} has no GPU model")

        def op(fl, by, u=False):
            return machine.gpu.op_time(fl, by, u_solve=u)
    else:
        raise ValueError(f"unknown device {device!r}")

    def diag_cost(K: int, u: bool = False) -> float:
        w = part.size(K)
        return op(gemm_flops(w, nrhs, w), gemm_bytes(w, nrhs, w), u)

    def apply_cost(I: int, K: int, u: bool = False) -> float:
        m, w = part.size(I), part.size(K)
        return op(gemm_flops(m, nrhs, w), gemm_bytes(m, nrhs, w), u)

    l_time, l_len = _phase_cp(
        nsup, lu.l_blockrows,
        lambda K: diag_cost(K),
        lambda I, K: apply_cost(I, K))

    # U phase: dependencies run from high to low indices; reverse the index
    # space so the same ascending DP applies.
    uadj = u_blockrows(lu)
    uadj_rev = [[nsup - 1 - int(i) for i in uadj[nsup - 1 - k]]
                for k in range(nsup)]
    u_time, u_len = _phase_cp(
        nsup, uadj_rev,
        lambda K: diag_cost(nsup - 1 - K, u=True),
        lambda I, K: apply_cost(nsup - 1 - I, nsup - 1 - K, u=True))

    return CriticalPath(time=l_time + u_time, length=l_len + u_len,
                        l_time=l_time, u_time=u_time)
