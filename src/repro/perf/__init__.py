"""Performance analysis companions to the solvers.

The paper's related work applies critical-path analysis [Ding et al.],
roofline modeling [Wittmann et al.] and performance tuning [Ahmad et al.]
to SpTRSV; this package provides all three against the simulated machines:

- :mod:`repro.perf.critical_path` — DAG critical-path lower bounds,
- :mod:`repro.perf.roofline` — flop/byte counts and roofline bounds,
- :mod:`repro.perf.tuner` — exhaustive grid-shape autotuning,
- :mod:`repro.perf.report` — human-readable report formatting.
"""

from repro.perf.critical_path import CriticalPath, critical_path
from repro.perf.levels import LevelProfile, level_profile
from repro.perf.report import compare_outcomes, format_report
from repro.perf.roofline import RooflineEstimate, roofline
from repro.perf.tuner import TuneResult, autotune_grid
from repro.perf.validation import ValidationReport, validate_simulation

__all__ = [
    "critical_path",
    "CriticalPath",
    "level_profile",
    "LevelProfile",
    "roofline",
    "RooflineEstimate",
    "autotune_grid",
    "TuneResult",
    "format_report",
    "compare_outcomes",
    "validate_simulation",
    "ValidationReport",
]
