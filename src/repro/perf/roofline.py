"""Roofline analysis of the SpTRSV workload.

SpTRSV's low arithmetic intensity is the paper's motivating observation;
this module quantifies it for a factorization: total FLOPs and bytes of one
L+U solve, the resulting intensity, and the machine's compute-/memory-bound
time floors for a single rank and for ``p`` perfectly parallel ranks
(Wittmann et al. apply the same modified-roofline lens to SpTRSV).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.costmodel import Machine, gemm_bytes, gemm_flops
from repro.numfact.lu import BlockSparseLU


@dataclass(frozen=True)
class RooflineEstimate:
    """Flop/byte totals and roofline time floors for one L+U solve."""

    flops: float
    bytes: float
    nrhs: int

    @property
    def intensity(self) -> float:
        """Arithmetic intensity [flop/byte]; SpTRSV sits far below 1."""
        return self.flops / self.bytes if self.bytes else 0.0

    def time_floor(self, machine: Machine, ranks: int = 1) -> float:
        """Roofline lower bound with ``ranks`` perfectly parallel ranks."""
        cpu = machine.cpu
        t_flops = self.flops / (cpu.flop_rate * ranks)
        t_bytes = self.bytes / (cpu.mem_bw * ranks)
        return max(t_flops, t_bytes)

    def bound(self, machine: Machine) -> str:
        """Which roof binds on this machine: 'memory' or 'compute'."""
        cpu = machine.cpu
        machine_balance = cpu.flop_rate / cpu.mem_bw
        return "memory" if self.intensity < machine_balance else "compute"


def roofline(lu: BlockSparseLU, nrhs: int = 1) -> RooflineEstimate:
    """Count the FLOPs and bytes of one sequential L+U solve."""
    part = lu.partition
    flops = 0.0
    nbytes = 0.0
    for K in range(lu.nsup):
        w = part.size(K)
        # Diagonal applications in both phases.
        flops += 2 * gemm_flops(w, nrhs, w)
        nbytes += 2 * gemm_bytes(w, nrhs, w)
    for (I, K), blk in lu.Lblocks.items():
        m, w = blk.shape
        flops += gemm_flops(m, nrhs, w)
        nbytes += gemm_bytes(m, nrhs, w)
    for (K, J), blk in lu.Ublocks.items():
        m, w = blk.shape
        flops += gemm_flops(m, nrhs, w)
        nbytes += gemm_bytes(m, nrhs, w)
    return RooflineEstimate(flops=flops, bytes=nbytes, nrhs=nrhs)
