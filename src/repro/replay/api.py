"""Replay cache + solve entry points.

One :class:`ReplayState` lives on each :class:`~repro.core.solver.SpTRSVSolver`
(lazily, so solvers built via ``from_pipeline`` get one too).  Because the
serving tier's :class:`~repro.serve.cache.FactorizationCache` stores whole
solvers, compiled programs are cached alongside the factorization and keyed
by the same ``(matrix_fingerprint, grid, algorithm)`` identity.

Two artifact tiers:

- value programs (``(impl, tree_kind)``) — nrhs- and machine-independent;
- timing tapes (``(impl, tree_kind, level_sync, machine, nrhs)``) — one
  instrumented recording run each, validated byte-for-byte against its own
  simulation before being cached (see :mod:`repro.replay.tape`).

The **recording run is a normal simulated solve** (observation hooks are
bit-neutral, pinned by PR 2's tests), so the first ``replay=True`` solve
returns exactly what ``replay=False`` would; every later solve of the same
shape executes the flat program and copies the validated timing result —
no coroutines, no mailbox, no per-message dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricsRegistry
from repro.replay.program import ValueProgram, compile_program
from repro.replay.tape import Tape, TapeRecorder, from_recorder, validate_tape


class ReplayError(ValueError):
    """The requested solve cannot take the replay fast path."""


#: Algorithms the schedule compiler supports.  The zoo backends
#: (``sparse_allreduce_v2``, ``ca_trsm``) always take the simulator —
#: the serving tier consults this tuple before enabling its fast path.
REPLAYABLE = ("2d", "new3d", "baseline3d")


class ReplayMismatch(AssertionError):
    """A compiled artifact disagreed with its own recording run."""


@dataclass
class ReplayStats:
    """Counters over one solver's replay cache."""

    compiles: int = 0   # value programs compiled
    records: int = 0    # tapes recorded + validated (cold solves)
    replays: int = 0    # fast-path executions (hot solves)


@dataclass
class CompiledTape:
    """A validated tape plus the reusable timing/metrics artifacts."""

    tape: Tape
    base: object                # private SimResult template (never aliased)
    metrics: MetricsRegistry    # populated registry of the recording run


@dataclass
class ReplayState:
    """Compiled artifacts cached on one solver."""

    programs: dict[tuple, ValueProgram] = field(default_factory=dict)
    tapes: dict[tuple, CompiledTape] = field(default_factory=dict)
    stats: ReplayStats = field(default_factory=ReplayStats)


def replay_state(solver) -> ReplayState:
    """The solver's replay cache (created on first use; ``from_pipeline``
    bypasses ``__init__``, hence the lazy attribute)."""
    st = solver.__dict__.get("_replay")
    if st is None:
        st = ReplayState()
        solver.__dict__["_replay"] = st
    return st


def _resolve(solver, algorithm: str, tree_kind: str | None) -> tuple[str, str]:
    """Mirror ``SpTRSVSolver._solve_cpu``'s algorithm/tree resolution."""
    if algorithm == "2d":
        if solver.grid.pz != 1:
            raise ValueError("algorithm='2d' requires pz == 1")
        return "new3d", tree_kind or "auto"
    if algorithm == "new3d":
        return "new3d", tree_kind or "auto"
    if algorithm == "baseline3d":
        return "baseline3d", tree_kind or "flat"
    raise ReplayError(
        f"replay does not support algorithm {algorithm!r}; the schedule "
        f"compiler covers {REPLAYABLE} — solve without replay=True")


def _copy_result(base):
    """Fresh SimResult so callers (e.g. ``solve_blocked``'s clock shift)
    can never mutate the cached template."""
    from repro.comm.simulator import SimResult

    return SimResult(clocks=base.clocks.copy(),
                     times=[dict(t) for t in base.times],
                     sent_msgs=[dict(t) for t in base.sent_msgs],
                     sent_bytes=[dict(t) for t in base.sent_bytes],
                     marks=[dict(m) for m in base.marks],
                     results=[None] * len(base.results))


def _setup_for(solver, impl: str, kind: str):
    if impl == "new3d":
        return solver._new3d_setup(kind)
    return solver._baseline_setup(kind)


def replay_solve(solver, b_perm: np.ndarray, nrhs: int, was1d: bool,
                 algorithm: str, tree_kind: str | None, machine,
                 baseline_level_sync: bool, allreduce_impl: str,
                 profile: bool):
    """The ``solve(replay=True)`` path; returns a ``SolveOutcome``.

    Cache miss: run the instrumented simulation (the answer the caller
    gets), compile + validate the artifacts, cache them.  Cache hit:
    execute the flat value program and copy the validated timing result.
    """
    from repro.core.solver import PerfReport, SolveOutcome

    impl, kind = _resolve(solver, algorithm, tree_kind)
    if impl == "new3d" and allreduce_impl != "sparse":
        raise ReplayError(
            "replay compiles the sparse allreduce only "
            "(allreduce_impl='sparse'); the naive ablation stays on the "
            "simulator")
    st = replay_state(solver)

    pkey = (impl, kind)
    prog = st.programs.get(pkey)
    if prog is None:
        prog = compile_program(_setup_for(solver, impl, kind), impl, kind,
                               solver.n)
        st.programs[pkey] = prog
        st.stats.compiles += 1

    tkey = (impl, kind, bool(baseline_level_sync), machine.name, nrhs)
    ct = st.tapes.get(tkey)
    if ct is None:
        # Cold: one recording run.  Metrics are always attached so hot
        # solves can serve ``profile=True`` from the cached registry;
        # both hooks are bit-neutral for clocks and values.
        reg = MetricsRegistry()
        rec = TapeRecorder(solver.grid.nranks)
        x, res = solver._solve_cpu(
            b_perm, nrhs, algorithm, tree_kind, machine,
            baseline_level_sync, allreduce_impl,
            sim_kwargs={"metrics": reg, "recorder": rec})
        tape = from_recorder(rec, machine)
        validate_tape(tape, res)
        x_perm_prog = prog.execute(b_perm, nrhs)
        x_prog = np.empty_like(x_perm_prog)
        x_prog[solver.perm] = x_perm_prog
        if not np.array_equal(x_prog, x):
            raise ReplayMismatch(
                f"compiled value program for {algorithm!r} disagrees with "
                f"its recording run (max abs diff "
                f"{float(np.max(np.abs(x_prog - x))):.3e})")
        st.tapes[tkey] = CompiledTape(tape=tape, base=_copy_result(res),
                                      metrics=reg)
        st.stats.records += 1
        report = PerfReport(sim=res, algorithm=algorithm, grid=solver.grid,
                            nrhs=nrhs, metrics=reg if profile else None)
        return SolveOutcome(x=x[:, 0] if was1d else x, report=report)

    # Hot: flat numpy program + validated timing copy.
    x_perm = prog.execute(b_perm, nrhs)
    x = np.empty_like(x_perm)
    x[solver.perm] = x_perm
    st.stats.replays += 1
    report = PerfReport(sim=_copy_result(ct.base), algorithm=algorithm,
                        grid=solver.grid, nrhs=nrhs,
                        metrics=ct.metrics if profile else None)
    return SolveOutcome(x=x[:, 0] if was1d else x, report=report)


def replay_info(solver, algorithm: str = "new3d",
                tree_kind: str | None = None, machine=None, nrhs: int = 1,
                baseline_level_sync: bool = True) -> dict:
    """Compile (matrix, grid, algorithm) and summarize the artifacts.

    Backs ``repro replay --info``.  Triggers one recording solve (RHS of
    ones) if the tape is not cached yet.
    """
    machine = machine or solver.machine
    impl, kind = _resolve(solver, algorithm, tree_kind)
    b = np.ones((solver.n, nrhs))
    solver.solve(b, algorithm=algorithm, tree_kind=tree_kind,
                 machine=machine, baseline_level_sync=baseline_level_sync,
                 replay=True)
    st = replay_state(solver)
    prog = st.programs[(impl, kind)]
    ct = st.tapes[(impl, kind, bool(baseline_level_sync), machine.name,
                   nrhs)]
    return {
        "algorithm": algorithm,
        "impl": impl,
        "tree_kind": kind,
        "grid": f"{solver.grid.px}x{solver.grid.py}x{solver.grid.pz}",
        "machine": machine.name,
        "nrhs": nrhs,
        "instructions": len(prog.instrs),
        "kernels": prog.kernel_count,
        "registers": prog.nregs,
        "op_counts": prog.op_counts(),
        "messages": ct.tape.n_messages,
        "message_bytes": ct.tape.total_bytes(),
        "tape_ops": ct.tape.n_ops,
        "est_virtual_time": float(ct.base.clocks.max()),
    }
