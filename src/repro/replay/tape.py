"""Timing tapes: the virtual-clock half of a compiled solve.

A :class:`Tape` is the flat per-rank op stream (send/compute/recv/mark) of
one instrumented, fault-free simulation run, captured by a
:class:`TapeRecorder` hooked into :class:`~repro.comm.simulator.Simulator`
(``recorder=``).  :func:`replay_tape` re-executes the streams through a
min-heap event engine (the idiom of sparse-blobpool's discrete-event
``core/simulator.py``) applying the simulator's exact clock arithmetic —
send overhead, latency-delayed arrivals, ``max(clock, arrival) + recv
overhead`` waits — in the exact per-rank charge order of the recording,
so the produced clocks, per-label time/message/byte accounting and phase
marks are byte-for-byte identical to the recording run's.

The engine runs **once per compiled tape**, as validation; subsequent
solves copy the validated result (see :mod:`repro.replay.api`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

# Per-rank tape entries (plain tuples):
#   ("s", seq, nbytes, lat, phase, category)   eager send; posts arrival
#   ("c", seconds, phase, category)            local compute (incl. 0-second
#                                              ops — they still create the
#                                              (phase, category) time label)
#   ("r", seq, phase, category)                delivery of message ``seq``
#   ("m", name)                                clock mark (phase boundary)


class TapeError(RuntimeError):
    """A tape could not be recorded or replayed consistently."""


class TapeRecorder:
    """Collects per-rank op streams during one simulated run.

    Attach via ``Simulator(..., recorder=rec)``.  Recording is only
    defined for the fault-free, unreliable-transport path (the replay
    fast path's precondition; faulted solves stay on the simulator).
    """

    def __init__(self, nranks: int):
        self.ops: list[list[tuple]] = [[] for _ in range(nranks)]

    def on_send(self, rank: int, seq: int, nbytes: int, lat: float,
                phase: str, category: str) -> None:
        self.ops[rank].append(("s", seq, nbytes, lat, phase, category))

    def on_compute(self, rank: int, seconds: float, phase: str,
                   category: str) -> None:
        self.ops[rank].append(("c", seconds, phase, category))

    def on_recv(self, rank: int, seq: int, phase: str,
                category: str) -> None:
        self.ops[rank].append(("r", seq, phase, category))

    def on_mark(self, rank: int, name: str) -> None:
        self.ops[rank].append(("m", name))


@dataclass
class Tape:
    """Flat per-rank op streams plus the machine constants they priced."""

    nranks: int
    ops: list[list[tuple]]
    send_overhead: float
    recv_overhead: float

    @property
    def n_messages(self) -> int:
        return sum(1 for stream in self.ops for op in stream
                   if op[0] == "s")

    @property
    def n_ops(self) -> int:
        return sum(len(stream) for stream in self.ops)

    def total_bytes(self) -> float:
        return float(sum(op[2] for stream in self.ops for op in stream
                         if op[0] == "s"))


@dataclass
class TapeResult:
    """Engine output, shaped like the timing fields of a ``SimResult``."""

    clocks: np.ndarray
    times: list[dict]
    sent_msgs: list[dict]
    sent_bytes: list[dict]
    marks: list[dict]


def from_recorder(rec: TapeRecorder, machine) -> Tape:
    return Tape(nranks=len(rec.ops), ops=rec.ops,
                send_overhead=machine.net.send_overhead,
                recv_overhead=machine.net.recv_overhead)


def replay_tape(tape: Tape) -> TapeResult:
    """Advance all rank streams to completion with the min-heap engine.

    The heap orders runnable ranks by their virtual clock (smallest
    first); a rank blocks when it reaches a recv whose message has not
    been posted yet and is woken by the posting send.  Because each
    rank's charges are applied in its recorded stream order, every float
    accumulation repeats the original addition order exactly.
    """
    n = tape.nranks
    so, ro = tape.send_overhead, tape.recv_overhead
    clocks = [0.0] * n
    cursor = [0] * n
    times: list[dict] = [{} for _ in range(n)]
    sent_msgs: list[dict] = [{} for _ in range(n)]
    sent_bytes: list[dict] = [{} for _ in range(n)]
    marks: list[dict] = [{} for _ in range(n)]
    arrivals: dict[int, float] = {}
    waiter: dict[int, int] = {}          # seq -> rank parked on it
    heap: list[tuple[float, int]] = [(0.0, r) for r in range(n)]
    heapq.heapify(heap)
    done = 0

    def charge(r: int, phase: str, category: str, seconds: float) -> None:
        key = (phase, category)
        times[r][key] = times[r].get(key, 0.0) + seconds

    while heap:
        _, r = heapq.heappop(heap)
        stream = tape.ops[r]
        i = cursor[r]
        clock = clocks[r]
        blocked = False
        while i < len(stream):
            op = stream[i]
            kind = op[0]
            if kind == "c":
                _, seconds, phase, category = op
                clock += seconds
                charge(r, phase, category, seconds)
            elif kind == "s":
                _, seq, nbytes, lat, phase, category = op
                clock += so
                charge(r, phase, category, so)
                key = (phase, category)
                sent_msgs[r][key] = sent_msgs[r].get(key, 0) + 1
                sent_bytes[r][key] = sent_bytes[r].get(key, 0.0) + nbytes
                arrivals[seq] = clock + lat
                w = waiter.pop(seq, None)
                if w is not None:
                    heapq.heappush(heap, (clocks[w], w))
            elif kind == "r":
                _, seq, phase, category = op
                if seq not in arrivals:
                    waiter[seq] = r
                    blocked = True
                    break
                arrival = arrivals.pop(seq)
                wait = max(0.0, arrival - clock)
                clock = max(clock, arrival) + ro
                charge(r, phase, category, wait + ro)
            else:  # "m"
                marks[r][op[1]] = clock
            i += 1
        cursor[r] = i
        clocks[r] = clock
        if not blocked and i >= len(stream):
            done += 1

    if done != n:
        stuck = [r for r in range(n) if cursor[r] < len(tape.ops[r])]
        raise TapeError(
            f"tape replay deadlocked: rank(s) {stuck[:8]} blocked on "
            f"messages never posted — the tape is inconsistent")
    return TapeResult(clocks=np.array(clocks), times=times,
                      sent_msgs=sent_msgs, sent_bytes=sent_bytes,
                      marks=marks)


def validate_tape(tape: Tape, sim_result) -> TapeResult:
    """Replay ``tape`` and require byte-for-byte agreement with the
    recording run's :class:`~repro.comm.simulator.SimResult`.

    Exact (not approximate) equality: the engine repeats the simulator's
    float operations in the same order, so any difference at all means
    the tape or engine is wrong.  Returns the validated result.
    """
    out = replay_tape(tape)
    if not np.array_equal(out.clocks, sim_result.clocks):
        raise TapeError("tape replay clocks differ from the recording run")
    for name, got, want in (("times", out.times, sim_result.times),
                            ("sent_msgs", out.sent_msgs,
                             sim_result.sent_msgs),
                            ("sent_bytes", out.sent_bytes,
                             sim_result.sent_bytes),
                            ("marks", out.marks, sim_result.marks)):
        if got != want:
            raise TapeError(
                f"tape replay per-rank {name} differ from the recording run")
    return out
