"""Compile-once schedule-replay fast path.

``repro.analyze`` proves the communication schedule of every solver is
static per (matrix, grid, algorithm); this package exploits that by
compiling a solve **once** into two flat artifacts and re-executing them
on every subsequent solve with no coroutines, no mailbox matching and no
per-message Python dispatch:

- a :class:`~repro.replay.program.ValueProgram` — an ordered list of
  numpy kernel calls (SSA over a flat register file) producing the
  solution bit-identically to the message-driven kernels, independent of
  ``nrhs`` and of the machine model;
- a :class:`~repro.replay.tape.Tape` — the per-rank op streams
  (send/compute/recv/mark) of one instrumented simulation, replayed by a
  min-heap event engine that reproduces the simulator's virtual clocks
  byte-for-byte.

Entry points: ``SpTRSVSolver.solve(replay=True)`` (see
:func:`repro.replay.api.replay_solve`), the serving tier's cache-hit
dispatch, and the ``repro replay --info`` CLI.  Bit-identity to the
simulated path is enforced at compile time (every tape is validated
against its recording run before it is cached), by ``tests/test_replay.py``
and by the fuzzer's ``replay=True`` draws.  See ``docs/PERFORMANCE.md``.
"""

from repro.replay.api import (  # noqa: F401
    REPLAYABLE,
    ReplayError,
    ReplayMismatch,
    ReplayState,
    replay_info,
    replay_solve,
    replay_state,
)
from repro.replay.program import ValueProgram, compile_program  # noqa: F401
from repro.replay.tape import Tape, TapeRecorder, replay_tape  # noqa: F401
