"""Value programs: the numpy half of a compiled solve.

A :class:`ValueProgram` is an ordered, flat list of kernel instructions
(SSA over an integer register file) that produces the permuted-order
solution of one ``(matrix, grid, algorithm)`` configuration bit-identically
to the message-driven kernels — with no coroutines, no mailbox matching
and no per-message Python dispatch.  It is independent of both ``nrhs``
(shapes are parameterized by the runtime batch width) and the machine
model (timing lives in :mod:`repro.replay.tape`).

Why compilation is sound: the 2D kernel buffers partial sums per
contribution key and materializes them in canonical key order (see
``sptrsv2d.py``), so the solved values are independent of message
interleaving; the schedule itself is static per configuration (proved by
``repro.analyze``).  The compiler therefore symbolically executes the
same worklist the kernels run — one *global* worklist across all ranks,
with sends modeled as direct register hand-offs — and any valid
topological order yields bit-identical values.  Every floating-point
operation the kernels perform (zeros-init + in-place accumulation,
``rhs - lsum``, per-column GEMMs via :func:`repro.util.matmul_columns`)
is mirrored exactly; no algebraic shortcuts (``0.0 + x`` is not even
bitwise ``x`` — it flips the sign of ``-0.0``).

Execution is two-tier: :meth:`ValueProgram.execute_interp` dispatches one
instruction at a time (the reference), while :meth:`ValueProgram.execute`
runs a :class:`_VectorPlan` — instructions scheduled by DAG depth and
batched into stacked-gufunc matmuls and fancy-indexed adds over a flat
register arena, which is where the fast path's order-of-magnitude win
over the simulated solve comes from.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.core.sparse_allreduce import _my_sns, ancestor_supernodes
from repro.core.sptrsv3d_baseline import Baseline3DSetup, _my_diag_sns
from repro.core.sptrsv3d_new import New3DSetup
from repro.grids.grid3d import BlockCyclicMap
from repro.util import matmul_columns

# Instruction set (plain tuples, dispatched by opcode string):
#   ("loadb", dst, c0, c1)        regs[dst] = b_perm[c0:c1]          (view)
#   ("zeros", dst, rows)          regs[dst] = zeros((rows, nrhs))
#   ("gemm",  dst, ci, src)       regs[dst] = matmul_columns(consts[ci], regs[src])
#   ("accum", dst, rows, srcs)    regs[dst] = zeros((rows, nrhs)); += each src
#   ("solve", dst, ci, rhs, ls)   regs[dst] = matmul_columns(consts[ci],
#                                                  regs[rhs] - regs[ls])
#   ("add",   dst, a, b)          regs[dst] = regs[a] + regs[b]
#   ("store", src, c0, c1)        x_perm[c0:c1] = regs[src]
# Registers are written exactly once and their arrays never mutated after
# definition (accum only mutates its own fresh zeros buffer), so register
# aliasing — e.g. the allreduce broadcast rebinding a receiver's value to
# the sender's register — is always safe.


class CompileError(RuntimeError):
    """The setup violates a structural assumption the compiler relies on."""


@dataclass
class ValueProgram:
    """A compiled, machine- and nrhs-independent solve."""

    impl: str                      # "new3d" | "baseline3d"
    tree_kind: str
    n: int                         # rows of the permuted solution
    nregs: int
    instrs: list[tuple]
    consts: list[np.ndarray]       # factor blocks / diagonal inverses (refs)
    _vplan: object = field(default=None, repr=False, compare=False)

    @property
    def kernel_count(self) -> int:
        """Floating-point kernel calls per execution (gemm/solve/accum/add)."""
        return sum(1 for ins in self.instrs
                   if ins[0] in ("gemm", "solve", "accum", "add"))

    def op_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ins in self.instrs:
            out[ins[0]] = out.get(ins[0], 0) + 1
        return out

    def execute(self, b_perm: np.ndarray, nrhs: int) -> np.ndarray:
        """Run the compiled solve; returns the permuted-order solution.

        Dispatches to the level-batched vector executor (built lazily on
        first call, nrhs-independent); :meth:`execute_interp` is the
        one-instruction-at-a-time reference it is bit-identical to.
        """
        vp = self._vplan
        if vp is None:
            vp = self._vplan = _VectorPlan(self)
        return vp.run(b_perm, nrhs)

    def execute_interp(self, b_perm: np.ndarray, nrhs: int) -> np.ndarray:
        """Reference interpreter: run the instruction list in order."""
        regs: list = [None] * self.nregs
        consts = self.consts
        x_perm = np.empty((self.n, nrhs))
        for ins in self.instrs:
            op = ins[0]
            if op == "gemm":
                regs[ins[1]] = matmul_columns(consts[ins[2]], regs[ins[3]])
            elif op == "accum":
                out = np.zeros((ins[2], nrhs))
                for s in ins[3]:
                    out += regs[s]
                regs[ins[1]] = out
            elif op == "solve":
                regs[ins[1]] = matmul_columns(
                    consts[ins[2]], regs[ins[3]] - regs[ins[4]])
            elif op == "add":
                regs[ins[1]] = regs[ins[2]] + regs[ins[3]]
            elif op == "loadb":
                regs[ins[1]] = b_perm[ins[2]:ins[3]]
            elif op == "zeros":
                regs[ins[1]] = np.zeros((ins[2], nrhs))
            elif op == "store":
                x_perm[ins[2]:ins[3]] = regs[ins[1]]
            else:  # pragma: no cover - corrupt program
                raise CompileError(f"unknown opcode {op!r}")
        return x_perm


def _layout(M: np.ndarray) -> str:
    """BLAS-relevant layout class of a constant block.

    ``M @ y`` bits depend on whether BLAS walks ``M`` row- or
    column-major (the transposed kernel sums in a different grouping), so
    stacked execution must group by layout and reproduce it per slice.
    Both-contiguous blocks (one dimension of size 1) behave as "C".
    """
    if M.flags["C_CONTIGUOUS"]:
        return "C"
    if M.flags["F_CONTIGUOUS"]:
        return "F"
    return "X"


class _VectorPlan:
    """Level-batched executor for one :class:`ValueProgram`.

    Registers live in one flat ``(total_rows, nrhs)`` arena (each SSA
    register owns a fixed row range).  Instructions are scheduled by DAG
    depth and, within a level, grouped so that

    - all GEMM/solve blocks of one ``(m, k)`` shape run as a single
      stacked gufunc matmul ``(G, 1, m, k) @ (G, nrhs, k, 1)``, and
    - all elementwise adds (accumulation rounds, receive-adds) run as one
      fancy-indexed gather/add/scatter each,

    cutting thousands of per-block numpy dispatches down to a few per
    level.  This is bit-identical to the interpreter because (a) any
    topological order of an SSA program computes the same values, (b)
    elementwise ops are columnwise/rowwise independent, and (c) numpy
    evaluates a stacked matmul as the identical per-slice ``(m, k) @
    (k, 1)`` BLAS call that :func:`repro.util.matmul_columns` makes —
    per-column accumulation order and all (pinned by
    ``tests/test_replay.py``).  Per-accumulator add order is preserved by
    executing round ``r`` (every accumulator's ``r``-th source, canonical
    key order) before round ``r + 1``.
    """

    def __init__(self, prog: ValueProgram):
        consts = prog.consts
        nregs = prog.nregs
        length = [0] * nregs
        depth = [0] * nregs

        for ins in prog.instrs:
            op = ins[0]
            if op == "loadb":
                length[ins[1]] = ins[3] - ins[2]
            elif op == "zeros":
                length[ins[1]] = ins[2]
            elif op == "gemm":
                length[ins[1]] = consts[ins[2]].shape[0]
                depth[ins[1]] = depth[ins[3]] + 1
            elif op == "accum":
                length[ins[1]] = ins[2]
                depth[ins[1]] = 1 + max((depth[s] for s in ins[3]),
                                        default=0)
            elif op == "solve":
                length[ins[1]] = consts[ins[2]].shape[0]
                depth[ins[1]] = 1 + max(depth[ins[3]], depth[ins[4]])
            elif op == "add":
                length[ins[1]] = length[ins[2]]
                depth[ins[1]] = 1 + max(depth[ins[2]], depth[ins[3]])

        offs = np.zeros(nregs + 1, dtype=np.intp)
        np.cumsum(length, out=offs[1:])
        self.size = int(offs[nregs])
        self.n = prog.n

        def rows(reg: int) -> np.ndarray:
            return np.arange(offs[reg], offs[reg] + length[reg],
                             dtype=np.intp)

        load_d, load_s = [], []              # arena rows <- b_perm rows
        store_d, store_s = [], []            # x_perm rows <- arena rows
        fills = defaultdict(list)            # level -> [row arrays to zero]
        rounds = defaultdict(list)           # (level, r) -> [(dst, src)]
        adds = defaultdict(list)             # level -> [(dst, a, b)]
        mats = defaultdict(list)             # (level, m, k, is_solve)
        for ins in prog.instrs:
            op = ins[0]
            if op == "loadb":
                load_d.append(rows(ins[1]))
                load_s.append(np.arange(ins[2], ins[3], dtype=np.intp))
            elif op == "zeros":
                fills[0].append(rows(ins[1]))
            elif op == "gemm":
                M = consts[ins[2]]
                mats[(depth[ins[1]], *M.shape, _layout(M), False)].append(
                    (M, rows(ins[1]), rows(ins[3]), None))
            elif op == "accum":
                d = rows(ins[1])
                fills[depth[ins[1]]].append(d)
                for r, s in enumerate(ins[3]):
                    rounds[(depth[ins[1]], r)].append((d, rows(s)))
            elif op == "solve":
                M = consts[ins[2]]
                mats[(depth[ins[1]], *M.shape, _layout(M), True)].append(
                    (M, rows(ins[1]), rows(ins[3]), rows(ins[4])))
            elif op == "add":
                adds[depth[ins[1]]].append(
                    (rows(ins[1]), rows(ins[2]), rows(ins[3])))
            else:  # store
                store_s.append(rows(ins[1]))
                store_d.append(np.arange(ins[2], ins[3], dtype=np.intp))

        self.load_d = np.concatenate(load_d)
        self.load_s = np.concatenate(load_s)
        self.store_d = np.concatenate(store_d)
        self.store_s = np.concatenate(store_s)

        # stages[level] = (fill, [(dst, src)] by round, (dst, a, b), mat
        # groups); every operand of a level-L instruction is defined at a
        # strictly lower level, so batching within a level is safe.
        self.stages = []
        for lv in sorted(set(fills) | set(adds)
                         | {key[0] for key in rounds}
                         | {key[0] for key in mats}):
            fill = (np.concatenate(fills[lv]) if lv in fills else None)
            rnds = []
            r = 0
            while (lv, r) in rounds:
                pairs = rounds[(lv, r)]
                rnds.append((np.concatenate([p[0] for p in pairs]),
                             np.concatenate([p[1] for p in pairs])))
                r += 1
            add3 = None
            if lv in adds:
                trip = adds[lv]
                add3 = (np.concatenate([t[0] for t in trip]),
                        np.concatenate([t[1] for t in trip]),
                        np.concatenate([t[2] for t in trip]))
            groups = []
            for key in sorted(k for k in mats if k[0] == lv):
                ents = mats[key]
                if key[3] == "X":
                    # Neither-contiguous blocks (not produced by today's
                    # plans): keep the original array per entry — gufunc
                    # broadcasting runs the core op on its exact strides.
                    for M, d, s_, l_ in ents:
                        groups.append((M, d[None], s_[None],
                                       None if l_ is None else l_[None]))
                    continue
                if key[3] == "F":
                    # Rebuild each slice with the original F-order strides
                    # (8, m*8): BLAS picks its transposed kernel from the
                    # layout, and bit-identity requires the same kernel the
                    # interpreter's ``M @ y`` call gets.
                    stack = np.ascontiguousarray(
                        np.stack([e[0].T for e in ents])).transpose(0, 2, 1)
                else:
                    stack = np.ascontiguousarray(
                        np.stack([e[0] for e in ents]))
                groups.append((
                    stack[:, None],
                    np.stack([e[1] for e in ents]),
                    np.stack([e[2] for e in ents]),
                    (np.stack([e[3] for e in ents])
                     if key[4] else None)))
            self.stages.append((fill, rnds, add3, groups))

    def run(self, b_perm: np.ndarray, nrhs: int) -> np.ndarray:
        arena = np.empty((self.size, nrhs))
        arena[self.load_d] = b_perm[self.load_s]
        for fill, rnds, add3, groups in self.stages:
            if fill is not None:
                arena[fill] = 0.0
            for dst, src in rnds:
                arena[dst] = arena[dst] + arena[src]
            if add3 is not None:
                dst, a, b = add3
                arena[dst] = arena[a] + arena[b]
            for Ms, dst, src, ls in groups:
                x = arena[src]                        # (G, k, nrhs)
                if ls is not None:
                    x = x - arena[ls]
                xc = np.ascontiguousarray(x.transpose(0, 2, 1))[..., None]
                out = np.matmul(Ms, xc)               # (G, nrhs, m, 1)
                arena[dst] = out[..., 0].transpose(0, 2, 1)
        x_perm = np.empty((self.n, nrhs))
        x_perm[self.store_d] = arena[self.store_s]
        return x_perm


class _Emitter:
    """Accumulates instructions, registers and interned constants."""

    def __init__(self):
        self.instrs: list[tuple] = []
        self.consts: list[np.ndarray] = []
        self._const_idx: dict[int, int] = {}
        self.nregs = 0

    def _reg(self) -> int:
        r = self.nregs
        self.nregs += 1
        return r

    def const(self, arr: np.ndarray) -> int:
        i = self._const_idx.get(id(arr))
        if i is None:
            i = len(self.consts)
            self.consts.append(arr)
            self._const_idx[id(arr)] = i
        return i

    def loadb(self, c0: int, c1: int) -> int:
        r = self._reg()
        self.instrs.append(("loadb", r, c0, c1))
        return r

    def zeros(self, rows: int) -> int:
        r = self._reg()
        self.instrs.append(("zeros", r, rows))
        return r

    def gemm(self, ci: int, src: int) -> int:
        r = self._reg()
        self.instrs.append(("gemm", r, ci, src))
        return r

    def accum(self, rows: int, srcs: tuple[int, ...]) -> int:
        r = self._reg()
        self.instrs.append(("accum", r, rows, srcs))
        return r

    def solve(self, ci: int, rhs: int, lsum: int) -> int:
        r = self._reg()
        self.instrs.append(("solve", r, ci, rhs, lsum))
        return r

    def add(self, a: int, b: int) -> int:
        r = self._reg()
        self.instrs.append(("add", r, a, b))
        return r

    def store(self, src: int, c0: int, c1: int) -> None:
        self.instrs.append(("store", src, c0, c1))


@dataclass
class _RankState:
    """Symbolic per-rank state of one 2D solve (mirrors ``sptrsv_2d``)."""

    plan: object
    fmod: dict = field(default_factory=dict)
    frecv: dict = field(default_factory=dict)
    contribs: dict = field(default_factory=dict)   # I -> {key: reg}
    values: dict = field(default_factory=dict)     # K -> reg


def _compile_2d(em: _Emitter, plan2d, rhs_regs: dict[int, dict[int, int]],
                ext_regs: dict[int, dict[int, int]] | None = None,
                initial_regs: dict[int, dict[int, int]] | None = None,
                ) -> tuple[dict[int, dict[int, int]], dict[int, dict[int, int]]]:
    """Symbolically execute one 2D solve across all ranks of its grid.

    The global worklist plays the role of the per-rank deques plus the
    mailbox: an ``emit`` at a broadcast-tree child is exactly the child's
    handling of the corresponding "bc" message.  Returns per-rank
    ``(values, out_lsum)`` register maps, like the kernel's return value.
    """
    size = plan2d.sn_size
    diag_inv = plan2d.diag_inv
    ranks = plan2d.grid.grid_ranks(plan2d.z)
    st: dict[int, _RankState] = {}
    for r in ranks:
        plan = plan2d.plan_of(r)
        st[r] = _RankState(plan=plan, fmod=dict(plan.fmod0),
                           frecv=dict(plan.frecv0))

    def add_contrib(s: _RankState, I: int, key: tuple, reg: int) -> None:
        c = s.contribs.setdefault(I, {})
        c[key] = em.add(c[key], reg) if key in c else reg

    def materialize(s: _RankState, I: int) -> int:
        c = s.contribs.pop(I, None)
        keys = sorted(c) if c else []
        return em.accum(size(I), tuple(c[k] for k in keys))

    def row_ready(s: _RankState, I: int) -> bool:
        return s.fmod.get(I, 0) == 0 and s.frecv.get(I, 0) == 0

    work: deque = deque()
    for r in ranks:
        s = st[r]
        if initial_regs:
            for I, reg in initial_regs.get(r, {}).items():
                add_contrib(s, I, (0, 0), reg)
        for J in s.plan.ext_cols:
            work.append(("emit", r, J, ext_regs[r][J]))
        for K in s.plan.solve_cols:
            if row_ready(s, K):
                work.append(("solve", r, K))

    while work:
        item = work.popleft()
        kind = item[0]
        if kind == "solve":
            _, r, K = item
            s = st[r]
            lsum = materialize(s, K)
            val = em.solve(em.const(diag_inv[K]), rhs_regs[r][K], lsum)
            s.values[K] = val
            work.append(("emit", r, K, val))
        elif kind == "emit":
            _, r, J, val = item
            s = st[r]
            tree = s.plan.bcast_trees.get(J)
            if tree is not None:
                for c in tree.children(r):
                    work.append(("emit", c, J, val))
            for I, blk in s.plan.consumer_blocks.get(J, ()):
                g = em.gemm(em.const(blk), val)
                add_contrib(s, I, (1, J), g)
                s.fmod[I] -= 1
                if row_ready(s, I):
                    work.append(("rowdone", r, I))
        else:  # rowdone
            _, r, I = item
            s = st[r]
            tree = s.plan.red_trees.get(I)
            if tree is None or tree.root == r:
                if I in set(s.plan.solve_cols):
                    work.append(("solve", r, I))
            else:
                m = materialize(s, I)
                p = tree.parent(r)
                sp = st[p]
                add_contrib(sp, I, (2, r), m)
                sp.frecv[I] -= 1
                if row_ready(sp, I):
                    work.append(("rowdone", p, I))

    values, outs = {}, {}
    for r in ranks:
        s = st[r]
        missing = set(s.plan.solve_cols) - set(s.values)
        if missing:
            raise CompileError(
                f"rank {r}: symbolic 2D solve incomplete, missing "
                f"{sorted(missing)[:5]}")
        values[r] = s.values
        outs[r] = {I: materialize(s, I) for I in s.plan.out_rows}
    return values, outs


def _compile_new3d(em: _Emitter, setup: New3DSetup, n: int) -> None:
    """Algorithm 1: per-grid L solves, sparse allreduce, per-grid U solves."""
    grid, part = setup.grid, setup.part
    y_regs: dict[int, dict[int, int]] = {}
    for z in range(grid.pz):
        plan_L = setup.plans_L[z]
        rhs_regs: dict[int, dict[int, int]] = {}
        for r in grid.grid_ranks(z):
            d = {}
            for K in plan_L.plan_of(r).solve_cols:
                c0, c1 = part.first(K), part.last(K)
                if setup.sn_owner_grid[K] == z:
                    d[K] = em.loadb(c0, c1)
                else:
                    d[K] = em.zeros(c1 - c0)
            rhs_regs[r] = d
        vals, _ = _compile_2d(em, plan_L, rhs_regs)
        y_regs.update(vals)

    depth = setup.layout.depth
    if depth:
        steps_by_z = [ancestor_supernodes(setup.layout, part, z)
                      for z in range(grid.pz)]
        # Reduce toward grid 0: the receiver's in-order accumulation of the
        # packed buffer is per-supernode adds in the step's key order.
        for l in range(depth):
            stride = 1 << l
            for z in range(0, grid.pz, 2 * stride):
                for r in grid.grid_ranks(z):
                    i, j, _ = grid.coords_of(r)
                    ks = _my_sns(steps_by_z[z][l], grid, i, j)
                    peer = grid.zpeer(r, z + stride)
                    peer_ks = _my_sns(steps_by_z[z + stride][l], grid, i, j)
                    if ks != peer_ks:
                        raise CompileError(
                            f"allreduce step {l}: asymmetric exchange lists "
                            f"between ranks {r} and {peer}")
                    for K in ks:
                        y_regs[r][K] = em.add(y_regs[r][K], y_regs[peer][K])
        # Mirrored broadcast: full sums flow back out (pure aliasing — the
        # kernel's copy-out of the packed buffer is bitwise the sender's
        # value).
        for l in range(depth - 1, -1, -1):
            stride = 1 << l
            for z in range(0, grid.pz, 2 * stride):
                for r in grid.grid_ranks(z):
                    i, j, _ = grid.coords_of(r)
                    ks = _my_sns(steps_by_z[z][l], grid, i, j)
                    peer = grid.zpeer(r, z + stride)
                    peer_ks = _my_sns(steps_by_z[z + stride][l], grid, i, j)
                    if ks != peer_ks:
                        raise CompileError(
                            f"allreduce step {l}: asymmetric exchange lists "
                            f"between ranks {r} and {peer}")
                    for K in ks:
                        y_regs[peer][K] = y_regs[r][K]

    x_regs: dict[int, dict[int, int]] = {}
    for z in range(grid.pz):
        plan_U = setup.plans_U[z]
        rhs_regs = {r: {K: y_regs[r][K]
                        for K in plan_U.plan_of(r).solve_cols}
                    for r in grid.grid_ranks(z)}
        vals, _ = _compile_2d(em, plan_U, rhs_regs)
        x_regs.update(vals)

    cmap = BlockCyclicMap(grid)
    for K in range(part.nsup):
        z = setup.sn_owner_grid[K]
        r = cmap.diag_owner_rank(K, z)
        em.store(x_regs[r][K], part.first(K), part.last(K))


def _compile_baseline3d(em: _Emitter, setup: Baseline3DSetup, n: int) -> None:
    """ICS'19 baseline: level-by-level L, pairwise hand-offs, mirrored U."""
    grid, part = setup.grid, setup.part
    depth = setup.layout.depth
    carry: dict[int, dict[int, int]] = {r: {} for r in range(grid.nranks)}
    y_all: dict[int, dict[int, int]] = {r: {} for r in range(grid.nranks)}

    max_k = max(len(zs) for zs in setup.steps) - 1
    for k in range(max_k + 1):
        for z in range(grid.pz):
            if k >= len(setup.steps[z]):
                continue
            _, _, plan_l, _ = setup.steps[z][k]
            rhs_regs, init_regs = {}, {}
            for r in grid.grid_ranks(z):
                d, ini = {}, {}
                for K in plan_l.plan_of(r).solve_cols:
                    d[K] = em.loadb(part.first(K), part.last(K))
                    if K in carry[r]:
                        ini[K] = carry[r].pop(K)
                rhs_regs[r], init_regs[r] = d, ini
            vals, outs = _compile_2d(em, plan_l, rhs_regs,
                                     initial_regs=init_regs)
            for r, v in vals.items():
                y_all[r].update(v)
            for r, o in outs.items():
                for I, vreg in o.items():
                    if I in carry[r]:
                        carry[r][I] = em.add(carry[r][I], vreg)
                    else:
                        carry[r][I] = vreg
        # Pairwise inter-grid reduction of ancestor partials at level k.
        if k < depth:
            stride = 1 << k
            for z in range(0, grid.pz, 2 * stride):
                zs = z + stride
                anc_r = setup.steps[z][k][1]
                anc_s = setup.steps[zs][k][1]
                for r in grid.grid_ranks(z):
                    i, j, _ = grid.coords_of(r)
                    ks = _my_diag_sns(anc_r, grid, i, j)
                    rs = grid.zpeer(r, zs)
                    ks_s = _my_diag_sns(anc_s, grid, i, j)
                    if ks != ks_s:
                        raise CompileError(
                            f"L reduce level {k}: asymmetric exchange lists "
                            f"between ranks {r} and {rs}")
                    for K in ks:
                        sreg = carry[rs].get(K)
                        if sreg is None:
                            sreg = em.zeros(part.size(K))
                        if K in carry[r]:
                            carry[r][K] = em.add(carry[r][K], sreg)
                        else:
                            carry[r][K] = sreg

    # U phase: grids in decreasing active-step count, so every hand-off
    # (sent by the grid with the strictly larger kmax) is compiled before
    # its receiver consumes it.
    handoff: dict[int, dict[int, int]] = {}
    x_all: dict[int, dict[int, int]] = {r: {} for r in range(grid.nranks)}
    for z in sorted(range(grid.pz), key=lambda zz: -len(setup.steps[zz])):
        zsteps = setup.steps[z]
        kmax = len(zsteps) - 1
        x_known: dict[int, dict[int, int]] = {r: {}
                                              for r in grid.grid_ranks(z)}
        if z != 0:
            _, anc_sns, _, _ = zsteps[kmax]
            for r in grid.grid_ranks(z):
                i, j, _ = grid.coords_of(r)
                ks = _my_diag_sns(anc_sns, grid, i, j)
                if not ks:
                    continue
                got = handoff.pop(r, None)
                if got is None or list(got) != ks:
                    raise CompileError(
                        f"U re-activation of grid {z}: rank {r} expected "
                        f"hand-off for {ks}, got "
                        f"{sorted(got) if got else None}")
                x_known[r].update(got)
        for k in range(kmax, -1, -1):
            node_sns, anc_sns, _, plan_u = zsteps[k]
            rhs_regs, ext_regs = {}, {}
            for r in grid.grid_ranks(z):
                mp = plan_u.plan_of(r)
                rhs_regs[r] = {K: y_all[r][K] for K in mp.solve_cols}
                ext_regs[r] = {J: x_known[r][J] for J in mp.ext_cols}
            vals, _ = _compile_2d(em, plan_u, rhs_regs, ext_regs=ext_regs)
            for r, v in vals.items():
                x_all[r].update(v)
                x_known[r].update(v)
            if k >= 1:
                peer_z = z + (1 << (k - 1))
                need = sorted(node_sns) + anc_sns
                for r in grid.grid_ranks(z):
                    i, j, _ = grid.coords_of(r)
                    ks = _my_diag_sns(need, grid, i, j)
                    if ks:
                        handoff[grid.zpeer(r, peer_z)] = {
                            K: x_known[r][K] for K in ks}
    if handoff:
        raise CompileError(
            f"unconsumed U hand-offs for ranks {sorted(handoff)}")

    cmap = BlockCyclicMap(grid)
    for K in range(part.nsup):
        z = setup.sn_owner_grid[K]
        r = cmap.diag_owner_rank(K, z)
        em.store(x_all[r][K], part.first(K), part.last(K))


def compile_program(setup, impl: str, tree_kind: str, n: int) -> ValueProgram:
    """Compile one solver setup into a :class:`ValueProgram`.

    ``setup`` is a :class:`New3DSetup` or :class:`Baseline3DSetup` (already
    built and cached by the solver); ``n`` is the matrix order.
    """
    em = _Emitter()
    if impl == "new3d":
        _compile_new3d(em, setup, n)
    elif impl == "baseline3d":
        _compile_baseline3d(em, setup, n)
    else:
        raise CompileError(f"unknown impl {impl!r}")
    return ValueProgram(impl=impl, tree_kind=tree_kind, n=n,
                        nregs=em.nregs, instrs=em.instrs, consts=em.consts)
