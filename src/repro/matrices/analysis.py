"""Structural analysis of sparse matrices: the inputs' vital signs.

Used by the CLI and the test suite to characterize generated matrices the
way the paper's Table 1 characterizes its suite (plus the properties the
pipeline *requires*: structural symmetry and diagonal dominance).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixStats:
    """Structural summary of a square sparse matrix."""

    n: int
    nnz: int
    density: float
    bandwidth: int          # max |i - j| over nonzeros
    avg_degree: float       # mean off-diagonal nonzeros per row
    max_degree: int
    pattern_symmetric: bool
    diag_dominance: float   # min_i (|a_ii| - sum_j |a_ij|); > 0 is strict

    def summary(self) -> str:
        return (f"n={self.n} nnz={self.nnz} density={self.density:.4%} "
                f"bandwidth={self.bandwidth} avg_deg={self.avg_degree:.1f} "
                f"max_deg={self.max_degree} "
                f"sym_pattern={self.pattern_symmetric} "
                f"dd_margin={self.diag_dominance:.3g}")


def matrix_stats(A: sp.spmatrix) -> MatrixStats:
    """Compute the structural summary of a square sparse matrix."""
    A = sp.csr_matrix(A)
    n = A.shape[0]
    if A.shape[0] != A.shape[1]:
        raise ValueError("matrix must be square")
    coo = A.tocoo()
    if A.nnz:
        bandwidth = int(np.abs(coo.row - coo.col).max())
    else:
        bandwidth = 0
    off_mask = coo.row != coo.col
    degrees = np.bincount(coo.row[off_mask], minlength=n)
    pattern = (A != 0).astype(np.int8)
    pattern_symmetric = (pattern != pattern.T).nnz == 0
    diag = A.diagonal()
    offsum = np.abs(A).sum(axis=1).A1 - np.abs(diag)
    dd = float((np.abs(diag) - offsum).min()) if n else 0.0
    return MatrixStats(
        n=n,
        nnz=A.nnz,
        density=A.nnz / float(n) / float(n) if n else 0.0,
        bandwidth=bandwidth,
        avg_degree=float(degrees.mean()) if n else 0.0,
        max_degree=int(degrees.max()) if n else 0,
        pattern_symmetric=bool(pattern_symmetric),
        diag_dominance=dd,
    )


def check_solver_requirements(A: sp.spmatrix) -> list[str]:
    """Return the list of pipeline requirements ``A`` violates (empty = ok).

    The solvers need a square, structurally symmetric matrix that
    factorizes without pivoting (strict diagonal dominance is the
    sufficient condition the generators guarantee).
    """
    problems = []
    if A.shape[0] != A.shape[1]:
        return ["matrix is not square"]
    stats = matrix_stats(A)
    if not stats.pattern_symmetric:
        problems.append("nonzero pattern is not symmetric")
    if stats.diag_dominance <= 0:
        problems.append(
            "matrix is not strictly diagonally dominant; LU without "
            "pivoting may be unstable")
    if (A.diagonal() == 0).any():
        problems.append("zero diagonal entries")
    return problems
