"""Content fingerprints for sparse matrices.

A :class:`MatrixFingerprint` identifies a matrix by two SHA-256 digests:
the *structure* hash covers the canonical CSR pattern (shape, ``indptr``,
``indices``) and the *numeric* digest covers the values.  Splitting the two
lets callers distinguish "same sparsity, new values" (a refactorization
with reusable symbolic analysis) from "different matrix entirely".

The combined :attr:`~MatrixFingerprint.hexdigest` is the cache key of
:class:`repro.serve.FactorizationCache` — repeat solve traffic for an
already-factored matrix skips the whole preprocessing pipeline — and is
printed by ``repro info``.

Hashing is canonical: indices are sorted, index arrays are widened to
``int64`` and values to ``float64`` before digesting, so the fingerprint
is invariant to CSR index dtype and unsorted-column representation (but
*not* to explicit zeros — those are structural by definition here).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp


@dataclass(frozen=True)
class MatrixFingerprint:
    """Structural + numeric identity of a square sparse matrix."""

    structure: str  # SHA-256 over (shape, indptr, indices), hex
    numeric: str    # SHA-256 over the canonicalized values, hex
    n: int
    nnz: int

    @property
    def hexdigest(self) -> str:
        """Combined digest: the cache key for (structure, values) identity."""
        return hashlib.sha256(
            (self.structure + ":" + self.numeric).encode()).hexdigest()

    def short(self, k: int = 16) -> str:
        """Abbreviated combined digest for display."""
        return self.hexdigest[:k]

    def same_structure(self, other: "MatrixFingerprint") -> bool:
        return self.structure == other.structure

    def __str__(self) -> str:
        return (f"{self.short()} (structure {self.structure[:8]}, "
                f"numeric {self.numeric[:8]}, n={self.n}, nnz={self.nnz})")


def matrix_fingerprint(A: sp.spmatrix) -> MatrixFingerprint:
    """Fingerprint ``A``'s canonical CSR form (structure + values)."""
    A = sp.csr_matrix(A)
    if A.shape[0] != A.shape[1]:
        raise ValueError(f"expected a square matrix, got shape {A.shape}")
    if not A.has_sorted_indices:
        A = A.sorted_indices()
    sh = hashlib.sha256(b"csr-fingerprint-v1")
    sh.update(np.asarray(A.shape, dtype=np.int64).tobytes())
    sh.update(np.ascontiguousarray(A.indptr, dtype=np.int64).tobytes())
    sh.update(np.ascontiguousarray(A.indices, dtype=np.int64).tobytes())
    nh = hashlib.sha256(b"values-v1")
    nh.update(np.ascontiguousarray(A.data, dtype=np.float64).tobytes())
    return MatrixFingerprint(structure=sh.hexdigest(), numeric=nh.hexdigest(),
                             n=int(A.shape[0]), nnz=int(A.nnz))
