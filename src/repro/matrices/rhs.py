"""Right-hand side builders for the solvers, examples and benchmarks."""

from __future__ import annotations

import numpy as np


def make_rhs(n: int, nrhs: int = 1, kind: str = "manufactured",
             seed: int = 0) -> np.ndarray:
    """Build an ``(n, nrhs)`` right-hand side matrix.

    kinds:
      ``ones``          all-ones columns,
      ``random``        standard normal entries,
      ``manufactured``  smooth per-column profiles ``sin(pi (i+1)(j+1)/n)``
                        so that solution errors are easy to eyeball,
      ``e1``            first unit vector per column.
    """
    if nrhs < 1:
        raise ValueError("nrhs must be >= 1")
    if kind == "ones":
        return np.ones((n, nrhs))
    if kind == "random":
        rng = np.random.default_rng(seed)
        return rng.standard_normal((n, nrhs))
    if kind == "manufactured":
        i = np.arange(1, n + 1)[:, None]
        j = np.arange(1, nrhs + 1)[None, :]
        return np.sin(np.pi * i * j / (n + 1.0)) + 1.0
    if kind == "e1":
        b = np.zeros((n, nrhs))
        b[0, :] = 1.0
        return b
    raise ValueError(f"unknown RHS kind {kind!r}")
