"""Sparse-matrix substrate: generators, I/O and right-hand sides.

The paper evaluates on six matrices (Table 1).  Four come from SuiteSparse
and two are private; none are shipped here, so :mod:`repro.matrices.suite`
provides parameterized *structural analogues* of each class (2D PDE, 3D PDE,
KKT/optimization, structural FEM, vector wave, high-fill chemistry) that can
be generated at any scale.
"""

from repro.matrices.analysis import MatrixStats, check_solver_requirements, matrix_stats
from repro.matrices.fingerprint import MatrixFingerprint, matrix_fingerprint
from repro.matrices.generators import (
    block_tridiagonal,
    chemistry_like,
    elasticity3d,
    fusion_block,
    helmholtz_like,
    kkt3d,
    maxwell_like,
    poisson2d,
    poisson2d_anisotropic,
    poisson3d,
    random_spd_like,
)
from repro.matrices.io import load_matrix_market, save_matrix_market
from repro.matrices.poison import (
    POISON_MATRICES,
    POISON_RHS_KINDS,
    make_poison_rhs,
    resolve_matrix,
)
from repro.matrices.rhs import make_rhs
from repro.matrices.suite import PAPER_MATRICES, MatrixSpec, get_matrix
from repro.matrices.validate import (
    InvalidMatrixError,
    InvalidRhsError,
    validate_matrix,
    validate_rhs,
)

__all__ = [
    "matrix_stats",
    "MatrixStats",
    "check_solver_requirements",
    "MatrixFingerprint",
    "matrix_fingerprint",
    "poisson2d",
    "poisson3d",
    "kkt3d",
    "elasticity3d",
    "maxwell_like",
    "chemistry_like",
    "fusion_block",
    "random_spd_like",
    "poisson2d_anisotropic",
    "helmholtz_like",
    "block_tridiagonal",
    "make_rhs",
    "load_matrix_market",
    "save_matrix_market",
    "PAPER_MATRICES",
    "MatrixSpec",
    "get_matrix",
    "POISON_MATRICES",
    "POISON_RHS_KINDS",
    "make_poison_rhs",
    "resolve_matrix",
    "InvalidMatrixError",
    "InvalidRhsError",
    "validate_matrix",
    "validate_rhs",
]
