"""Poison-input generators: adversarial matrices and right-hand sides.

These are the inputs a hostile (or merely buggy) client would hand the
serving tier: structurally singular matrices, NaN/Inf payloads, wrong
shapes, numerically hopeless systems and resource-exhaustion-sized
problems.  Every generator is deterministic in its arguments, so the
adversarial scenarios built on top of them (``repro.scenarios``) replay
bit-for-bit.

Two registries:

- :data:`POISON_MATRICES` — matrix name -> ``factory(scale)``; names all
  start with ``poison-`` so they can ride through the serving tier's
  workload plumbing next to the legitimate suite names.
  :func:`resolve_matrix` is a drop-in matrix provider (``SolveService
  (matrix_provider=resolve_matrix)``) that serves poison names from here
  and everything else from the paper suite.
- :func:`make_poison_rhs` — right-hand side kinds (``poison-nan``,
  ``poison-inf``, ``poison-shape``, ``poison-empty``) used by
  ``Request.rhs_kind``.

None of these pass ``repro.matrices.validate``; that is the point.  The
hardened ingestion layer must shed them with typed errors instead of
crashing or silently propagating NaNs.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.matrices.generators import poisson2d
from repro.matrices.suite import get_matrix

#: Preset sizes per scale, matching the suite's tiny/small/medium idea.
_SIZES = {"tiny": 12, "small": 24, "medium": 48}


def _grid(scale: str) -> int:
    try:
        return _SIZES[scale]
    except KeyError:
        raise ValueError(f"scale must be one of {sorted(_SIZES)}, "
                         f"got {scale!r}")


def singular_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A well-formed Poisson matrix with one diagonal entry zeroed out —
    structurally singular under the no-pivoting factorization."""
    A = sp.lil_matrix(poisson2d(_grid(scale), stencil=5, seed=11))
    k = A.shape[0] // 2
    A[k, k] = 0.0
    return sp.csr_matrix(A)


def nan_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A Poisson matrix with a NaN planted in an off-diagonal entry."""
    A = sp.csr_matrix(poisson2d(_grid(scale), stencil=5, seed=12))
    off = np.flatnonzero(A.tocoo().row != A.tocoo().col)
    A.data[off[len(off) // 2]] = np.nan
    return A


def inf_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A Poisson matrix with an Inf planted in an off-diagonal entry."""
    A = sp.csr_matrix(poisson2d(_grid(scale), stencil=5, seed=13))
    off = np.flatnonzero(A.tocoo().row != A.tocoo().col)
    A.data[off[len(off) // 3]] = np.inf
    return A


def nonsquare_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A rectangular matrix: drop the last row of a Poisson system."""
    A = sp.csr_matrix(poisson2d(_grid(scale), stencil=5, seed=14))
    return sp.csr_matrix(A[:-1, :])


def illconditioned_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A matrix that *factors* but with catastrophic element growth.

    The diagonal is scaled down to ~1e-14 of the off-diagonal magnitude on
    a contiguous block, so the no-pivoting LU survives structurally but
    the growth factor explodes — the numeric poison the service's
    stability gate must catch (a pure structural check cannot).
    """
    A = sp.lil_matrix(poisson2d(_grid(scale), stencil=5, seed=15))
    n = A.shape[0]
    for k in range(n // 4, n // 4 + max(2, n // 8)):
        A[k, k] = 1e-14
    return sp.csr_matrix(A)


def huge_matrix(scale: str = "tiny") -> sp.csr_matrix:
    """A resource-exhaustion probe: cheap to *construct* (diagonal + one
    off-diagonal band) but far above any sane serving admission bound, so
    the service must reject it on size before attempting the O(n^~1.5)
    preprocessing pipeline."""
    n = 200_000
    main = np.full(n, 4.0)
    off = np.full(n - 1, -1.0)
    return sp.csr_matrix(sp.diags([off, main, off], [-1, 0, 1]))


#: name -> factory(scale).  Names deliberately look like suite names so
#: workloads can mix them in; none of them validate.
POISON_MATRICES = {
    "poison-singular": singular_matrix,
    "poison-nan": nan_matrix,
    "poison-inf": inf_matrix,
    "poison-nonsquare": nonsquare_matrix,
    "poison-illcond": illconditioned_matrix,
    "poison-huge": huge_matrix,
}


def resolve_matrix(name: str, scale: str = "tiny") -> sp.csr_matrix:
    """Matrix provider serving poison names and suite names alike.

    Drop-in for :class:`repro.serve.SolveService`'s ``matrix_provider``
    hook — adversarial scenarios route requests at matrices named
    ``poison-*`` through the registry above and everything else through
    :func:`repro.matrices.get_matrix`.
    """
    factory = POISON_MATRICES.get(name)
    if factory is not None:
        return factory(scale)
    return get_matrix(name, scale)


#: Right-hand-side poison kinds understood by make_poison_rhs.
POISON_RHS_KINDS = ("poison-nan", "poison-inf", "poison-shape",
                    "poison-empty")


def make_poison_rhs(n: int, kind: str, seed: int = 0) -> np.ndarray:
    """Build a single malformed ``(?, 1)`` right-hand side.

    ``poison-nan``/``poison-inf`` plant non-finite entries in an otherwise
    normal vector; ``poison-shape`` returns the wrong number of rows;
    ``poison-empty`` returns zero rows.  Deterministic in ``seed``.
    """
    rng = np.random.default_rng([seed, 0xBAD])
    if kind == "poison-nan":
        b = rng.standard_normal((n, 1))
        b[int(rng.integers(n)), 0] = np.nan
        return b
    if kind == "poison-inf":
        b = rng.standard_normal((n, 1))
        b[int(rng.integers(n)), 0] = np.inf
        return b
    if kind == "poison-shape":
        return rng.standard_normal((n + 1 + int(rng.integers(4)), 1))
    if kind == "poison-empty":
        return np.empty((0, 1))
    raise ValueError(f"unknown poison RHS kind {kind!r} "
                     f"(have {', '.join(POISON_RHS_KINDS)})")
