"""The benchmark matrix suite: analogues of the paper's Table 1.

Each entry records the paper's original matrix metadata (size, nnz in LU,
density, application) next to the generator that produces the scaled-down
structural analogue used by this reproduction.  ``scale`` selects preset
sizes so the benchmarks stay laptop-runnable; ``EXPERIMENTS.md`` documents
the mapping per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import scipy.sparse as sp

from repro.matrices.generators import (
    chemistry_like,
    elasticity3d,
    fusion_block,
    kkt3d,
    maxwell_like,
    poisson2d,
)


@dataclass(frozen=True)
class MatrixSpec:
    """One Table 1 row: the paper's matrix and our analogue generator."""

    name: str
    description: str
    paper_n: int
    paper_nnz_lu: int
    paper_density: float  # nnz(LU) / n^2
    factory: Callable[[str], sp.csr_matrix]
    pde_class: str  # "2D", "3D", or "dense-ish": drives separator growth

    def build(self, scale: str = "small") -> sp.csr_matrix:
        """Generate the analogue at a preset scale (tiny/small/medium)."""
        return self.factory(scale)


_SIZES = {"tiny": 0, "small": 1, "medium": 2}


def _pick(scale: str, opts):
    try:
        return opts[_SIZES[scale]]
    except KeyError:
        raise ValueError(f"scale must be one of {list(_SIZES)}, got {scale!r}")


PAPER_MATRICES: dict[str, MatrixSpec] = {
    "s2D9pt2048": MatrixSpec(
        name="s2D9pt2048",
        description="Poisson (2D 9-point finite difference)",
        paper_n=4_194_304,
        paper_nnz_lu=810_605_750,
        paper_density=0.00005,
        factory=lambda s: poisson2d(_pick(s, (24, 48, 96)), stencil=9, seed=1),
        pde_class="2D",
    ),
    "nlpkkt80": MatrixSpec(
        name="nlpkkt80",
        description="Optimization (3D PDE-constrained KKT)",
        paper_n=1_062_400,
        paper_nnz_lu=1_928_132_340,
        paper_density=0.0017,
        factory=lambda s: kkt3d(_pick(s, (6, 9, 13)), seed=2),
        pde_class="3D",
    ),
    "ldoor": MatrixSpec(
        name="ldoor",
        description="Structural (3D FEM elasticity)",
        paper_n=952_203,
        paper_nnz_lu=319_022_661,
        paper_density=0.00035,
        factory=lambda s: elasticity3d(_pick(s, (5, 7, 10)), dof=3, seed=3),
        pde_class="3D",
    ),
    "dielFilterV3real": MatrixSpec(
        name="dielFilterV3real",
        description="Wave (FEM Maxwell, dielectric filter)",
        paper_n=1_102_824,
        paper_nnz_lu=1_138_910_076,
        paper_density=0.00094,
        factory=lambda s: maxwell_like(_pick(s, (4, 6, 10)), seed=4),
        pde_class="3D",
    ),
    "Ga19As19H42": MatrixSpec(
        name="Ga19As19H42",
        description="Chemistry (quantum chemistry, high fill)",
        paper_n=133_123,
        paper_nnz_lu=1_565_515_001,
        paper_density=0.0915,
        factory=lambda s: chemistry_like(_pick(s, (300, 600, 2400)),
                                         band=_pick(s, (15, 30, 120)),
                                         extra_density=0.0, seed=5),
        pde_class="dense-ish",
    ),
    "s1_mat_0_253872": MatrixSpec(
        name="s1_mat_0_253872",
        description="Fusion (coupled plasma blocks)",
        paper_n=253_872,
        paper_nnz_lu=425_394_978,
        paper_density=0.0066,
        factory=lambda s: fusion_block(_pick(s, (24, 64, 240)), block=8,
                                       couplings=2, seed=6),
        pde_class="3D",
    ),
}


def get_matrix(name: str, scale: str = "small") -> sp.csr_matrix:
    """Build the analogue of a paper matrix by name at the given scale."""
    try:
        spec = PAPER_MATRICES[name]
    except KeyError:
        raise KeyError(
            f"unknown matrix {name!r}; available: {sorted(PAPER_MATRICES)}")
    return spec.build(scale)
