"""Parameterized sparse matrix generators.

All generators return a diagonally dominant ``scipy.sparse.csr_matrix`` with
a structurally symmetric nonzero pattern, the two assumptions the paper's
SpTRSV pipeline makes (no pivoting during LU, symmetric pattern for the
supernodal U layout).  Each generator is a structural analogue of one of the
paper's Table 1 matrix classes and is scalable through its size parameters.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


def _make_diag_dominant(A: sp.spmatrix, margin: float = 1.0) -> sp.csr_matrix:
    """Rescale the diagonal so every row is strictly diagonally dominant.

    Keeps the off-diagonal pattern/values and sets
    ``a_ii = margin + sum_j |a_ij|`` which guarantees LU without pivoting
    and a well-conditioned triangular solve.
    """
    A = sp.csr_matrix(A)
    A = A + A.T  # symmetrize the pattern (values too; fine for test operators)
    A.setdiag(0.0)
    A.eliminate_zeros()
    rowsum = np.abs(A).sum(axis=1).A1
    A = A + sp.diags(rowsum + margin)
    A.sort_indices()
    return sp.csr_matrix(A)


def _grid_stencil(shape: tuple[int, ...], offsets: list[tuple[int, ...]],
                  rng: np.random.Generator | None = None) -> sp.csr_matrix:
    """Build the adjacency of a regular grid with the given neighbor offsets.

    ``shape`` is the grid extent per dimension; ``offsets`` lists relative
    neighbor coordinates (the zero offset is ignored).  Off-diagonal values
    are -1 unless ``rng`` is given, in which case they are drawn from
    U(0.5, 1.5) with a negative sign (keeps M-matrix flavor but breaks exact
    symmetry of values).
    """
    ndim = len(shape)
    n = int(np.prod(shape))
    coords = np.indices(shape).reshape(ndim, n)
    strides = np.array([int(np.prod(shape[d + 1:])) for d in range(ndim)])

    rows_all = []
    cols_all = []
    vals_all = []
    for off in offsets:
        off = np.asarray(off)
        if not off.any():
            continue
        shifted = coords + off[:, None]
        ok = np.ones(n, dtype=bool)
        for d in range(ndim):
            ok &= (shifted[d] >= 0) & (shifted[d] < shape[d])
        src = np.flatnonzero(ok)
        dst = (shifted[:, ok] * strides[:, None]).sum(axis=0)
        rows_all.append(src)
        cols_all.append(dst)
        if rng is None:
            vals_all.append(-np.ones(len(src)))
        else:
            vals_all.append(-rng.uniform(0.5, 1.5, size=len(src)))
    rows = np.concatenate(rows_all)
    cols = np.concatenate(cols_all)
    vals = np.concatenate(vals_all)
    return sp.csr_matrix((vals, (rows, cols)), shape=(n, n))


def _offsets_box(ndim: int, radius: int = 1) -> list[tuple[int, ...]]:
    """All offsets in the full box stencil (3^ndim - 1 neighbors)."""
    ranges = [range(-radius, radius + 1)] * ndim
    grids = np.meshgrid(*ranges, indexing="ij")
    pts = np.stack([g.ravel() for g in grids], axis=1)
    return [tuple(p) for p in pts if any(p)]


def _offsets_star(ndim: int) -> list[tuple[int, ...]]:
    """Axis-aligned nearest-neighbor offsets (2*ndim neighbors)."""
    out = []
    for d in range(ndim):
        for s in (-1, 1):
            off = [0] * ndim
            off[d] = s
            out.append(tuple(off))
    return out


def poisson2d(nx: int, ny: int | None = None, stencil: int = 9,
              seed: int | None = None) -> sp.csr_matrix:
    """2D Poisson matrix on an ``nx x ny`` grid (``s2D9pt2048`` analogue).

    ``stencil`` is 5 (star) or 9 (box).  The paper's s2D9pt2048 is the
    9-point discretization on a 2048^2 grid; pass smaller ``nx`` to scale.
    """
    ny = nx if ny is None else ny
    if stencil == 5:
        offsets = _offsets_star(2)
    elif stencil == 9:
        offsets = _offsets_box(2)
    else:
        raise ValueError("stencil must be 5 or 9")
    rng = None if seed is None else np.random.default_rng(seed)
    A = _grid_stencil((nx, ny), offsets, rng)
    return _make_diag_dominant(A)


def poisson3d(nx: int, ny: int | None = None, nz: int | None = None,
              stencil: int = 7, seed: int | None = None) -> sp.csr_matrix:
    """3D Poisson matrix on an ``nx x ny x nz`` grid.

    ``stencil`` is 7 (star) or 27 (box).  3D discretizations produce the
    large separators that drive the replication cost discussed for nlpkkt80.
    """
    ny = nx if ny is None else ny
    nz = nx if nz is None else nz
    if stencil == 7:
        offsets = _offsets_star(3)
    elif stencil == 27:
        offsets = _offsets_box(3)
    else:
        raise ValueError("stencil must be 7 or 27")
    rng = None if seed is None else np.random.default_rng(seed)
    A = _grid_stencil((nx, ny, nz), offsets, rng)
    return _make_diag_dominant(A)


def kkt3d(nx: int, seed: int = 0) -> sp.csr_matrix:
    """KKT-like saddle-point analogue of ``nlpkkt80`` (3D PDE-constrained opt).

    Builds ``[[H, B^T], [B, C]]`` where H is a 3D 7-point operator on an
    ``nx^3`` grid and B couples each grid point to its +x neighbor (a crude
    discrete constraint Jacobian), then shifts to diagonal dominance.  The
    key structural property preserved is the *3D* separator growth, which is
    what makes nlpkkt80 replication-heavy in the paper's Fig. 6.
    """
    rng = np.random.default_rng(seed)
    H = _grid_stencil((nx, nx, nx), _offsets_star(3), rng)
    n = H.shape[0]
    # Constraint block: identity plus +x-neighbor coupling.
    stride = nx * nx
    rows = np.arange(n - stride)
    B = sp.csr_matrix((rng.uniform(0.5, 1.5, size=len(rows)),
                       (rows, rows + stride)), shape=(n, n))
    B = B + sp.identity(n, format="csr")
    K = sp.bmat([[H, B.T], [B, None]], format="csr")
    return _make_diag_dominant(K)


def elasticity3d(nx: int, dof: int = 3, seed: int = 0) -> sp.csr_matrix:
    """3D structural FEM analogue of ``ldoor`` (multi-dof elasticity).

    An ``nx^3`` grid with ``dof`` unknowns per node and 7-point node
    coupling; each node-node coupling is a dense ``dof x dof`` block, the
    signature sparsity of vector FEM structural matrices.
    """
    rng = np.random.default_rng(seed)
    Anode = _grid_stencil((nx, nx, nx), _offsets_star(3), rng)
    Anode = Anode + sp.identity(Anode.shape[0], format="csr")
    block = -np.abs(rng.standard_normal((dof, dof))) - 0.1
    A = sp.kron(Anode, block, format="csr")
    return _make_diag_dominant(A)


def maxwell_like(nx: int, seed: int = 0) -> sp.csr_matrix:
    """Vector-wave analogue of ``dielFilterV3real`` (FEM Maxwell).

    A 3D grid with 2 coupled field components per node and a box (27-point)
    stencil, mimicking the denser coupling of edge-element curl-curl
    discretizations.
    """
    rng = np.random.default_rng(seed)
    Anode = _grid_stencil((nx, nx, nx), _offsets_box(3), rng)
    Anode = Anode + sp.identity(Anode.shape[0], format="csr")
    block = np.array([[-1.0, 0.4], [-0.4, -1.0]])
    A = sp.kron(Anode, block, format="csr")
    return _make_diag_dominant(A)


def chemistry_like(n: int, band: int | None = None, extra_density: float = 0.01,
                   seed: int = 0) -> sp.csr_matrix:
    """High-fill analogue of ``Ga19As19H42`` (quantum chemistry).

    A wide band plus random long-range couplings.  These matrices have
    nearly dense LU factors (9.15% LU density in the paper), stressing the
    compute-bound side of the solve.
    """
    rng = np.random.default_rng(seed)
    band = max(2, n // 40) if band is None else band
    diags = []
    offs = []
    for k in range(1, band + 1):
        diags.append(-rng.uniform(0.5, 1.5, size=n - k))
        offs.append(k)
    A = sp.diags(diags, offs, shape=(n, n), format="csr")
    nnz_extra = int(extra_density * n * n / 2)
    if nnz_extra > 0:
        rows = rng.integers(0, n, size=nnz_extra)
        cols = rng.integers(0, n, size=nnz_extra)
        keep = rows != cols
        E = sp.csr_matrix((-rng.uniform(0.1, 1.0, size=keep.sum()),
                           (rows[keep], cols[keep])), shape=(n, n))
        A = A + E
    return _make_diag_dominant(A)


def fusion_block(n_blocks: int, block: int = 16, couplings: int = 2,
                 long_range: int | None = None, seed: int = 0) -> sp.csr_matrix:
    """Block-structured analogue of ``s1_mat_0_253872`` (fusion simulation).

    ``n_blocks`` dense ``block x block`` diagonal blocks coupled to their
    ``couplings`` nearest block neighbors (a block band, as produced by
    coupled multi-species 1D-radial plasma discretizations), plus a few
    seeded ``long_range`` block ties (default ``n_blocks // 32``) standing
    in for flux-surface couplings.
    """
    rng = np.random.default_rng(seed)
    if long_range is None:
        long_range = max(1, n_blocks // 32)
    Ablk = sp.identity(n_blocks, format="lil")
    for i in range(n_blocks):
        for k in range(1, couplings + 1):
            if i + k < n_blocks:
                Ablk[i, i + k] = -rng.uniform(0.2, 1.0)
    for _ in range(long_range):
        i = int(rng.integers(0, n_blocks))
        j = int(rng.integers(0, n_blocks))
        if i != j:
            Ablk[i, j] = -rng.uniform(0.2, 1.0)
    dense = -np.abs(rng.standard_normal((block, block))) - 0.05
    A = sp.kron(sp.csr_matrix(Ablk), dense, format="csr")
    return _make_diag_dominant(A)


def poisson2d_anisotropic(nx: int, ny: int | None = None,
                          epsilon: float = 0.01,
                          seed: int | None = None) -> sp.csr_matrix:
    """Anisotropic 2D diffusion: strong x-coupling, weak y-coupling.

    Anisotropy stretches the elimination tree (separators become lines of
    strongly coupled unknowns), a classic stress test for orderings.
    """
    ny = nx if ny is None else ny
    n = nx * ny
    coords = np.indices((nx, ny)).reshape(2, n)
    rows, cols, vals = [], [], []
    for (dx, dy), w in (((1, 0), -1.0), ((0, 1), -epsilon)):
        shifted = coords + np.array([[dx], [dy]])
        ok = (shifted[0] < nx) & (shifted[1] < ny)
        src = np.flatnonzero(ok)
        dst = shifted[0, ok] * ny + shifted[1, ok]
        rows.extend([src, dst])
        cols.extend([dst, src])
        vals.extend([np.full(len(src), w)] * 2)
    A = sp.csr_matrix((np.concatenate(vals),
                       (np.concatenate(rows), np.concatenate(cols))),
                      shape=(n, n))
    return _make_diag_dominant(A)


def helmholtz_like(nx: int, shift: float = 0.3,
                   seed: int | None = None) -> sp.csr_matrix:
    """Shifted 2D Laplacian (Helmholtz-flavored), kept diagonally dominant.

    The negative shift weakens the diagonal the way indefinite Helmholtz
    operators do; ``_make_diag_dominant`` restores the strict dominance the
    no-pivoting factorization needs, so the *pattern and value spread*
    stress the solver while stability is preserved.
    """
    if not 0 <= shift < 1:
        raise ValueError("shift must be in [0, 1)")
    rng = None if seed is None else np.random.default_rng(seed)
    A = _grid_stencil((nx, nx), _offsets_star(2), rng)
    A = _make_diag_dominant(A)
    # Weaken the diagonal by the shift, then re-dominate minimally.
    d = A.diagonal()
    A = A - sp.diags(shift * (d - 1.0))
    return _make_diag_dominant(A)


def block_tridiagonal(nblocks: int, block: int = 8,
                      seed: int = 0) -> sp.csr_matrix:
    """Dense-block tridiagonal matrix (1D multi-variable discretizations).

    The worst case for level-set parallelism — the DAG is a single chain —
    and therefore the case where the 3D layout's Pz replication helps
    least; useful as a contrast workload in studies.
    """
    rng = np.random.default_rng(seed)
    diags = sp.identity(nblocks, format="lil")
    for i in range(nblocks - 1):
        diags[i, i + 1] = -rng.uniform(0.5, 1.5)
    dense = -np.abs(rng.standard_normal((block, block))) - 0.05
    A = sp.kron(sp.csr_matrix(diags), dense, format="csr")
    return _make_diag_dominant(A)


def random_spd_like(n: int, avg_degree: int = 4, seed: int = 0) -> sp.csr_matrix:
    """Random structurally symmetric diagonally dominant matrix.

    Used by the property-based tests as an adversarial input distribution:
    no grid structure, arbitrary degree distribution.
    """
    rng = np.random.default_rng(seed)
    nnz = max(1, avg_degree * n // 2)
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    keep = rows != cols
    A = sp.csr_matrix((-rng.uniform(0.1, 1.0, size=keep.sum()),
                       (rows[keep], cols[keep])), shape=(n, n))
    return _make_diag_dominant(A)
