"""Hardened ingestion: typed validation of matrices and right-hand sides.

The solver pipeline factors without pivoting and assumes well-formed
inputs; before this module existed, a malformed matrix (non-square,
NaN/Inf entries, a structurally or numerically missing diagonal) or a bad
right-hand side crashed deep inside the numeric kernels — or worse,
propagated NaNs into a "successful" answer.  Ingestion now fails at the
boundary with a *typed* error naming the violated requirement:

- :class:`InvalidMatrixError` — the matrix cannot enter the pipeline
  (``reason`` is a stable machine-readable slug);
- :class:`InvalidRhsError` — the right-hand side cannot be solved against
  a given matrix.

Both subclass :class:`ValueError`, so existing callers that guarded with
``except ValueError`` keep working; the serving tier maps them to typed
``Rejection(reason="poison-input")`` sheds (see ``repro.serve.service``).
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp


class InvalidMatrixError(ValueError):
    """A matrix failed ingestion validation; ``reason`` names the check."""

    def __init__(self, reason: str, detail: str):
        self.reason = reason
        super().__init__(f"invalid matrix [{reason}]: {detail}")


class InvalidRhsError(ValueError):
    """A right-hand side failed validation; ``reason`` names the check."""

    def __init__(self, reason: str, detail: str):
        self.reason = reason
        super().__init__(f"invalid right-hand side [{reason}]: {detail}")


def validate_matrix(A) -> None:
    """Reject matrices the no-pivoting pipeline cannot safely factor.

    Checks, in order: two-dimensional and square; finite entries (NaN/Inf
    data would silently propagate through the triangular sweeps); no zero
    or structurally missing diagonal entry (a zero pivot makes the
    factorization divide by zero — the structural-singularity proxy under
    no-pivoting).  Raises :class:`InvalidMatrixError` on the first
    violation; returns ``None`` for acceptable matrices.
    """
    shape = getattr(A, "shape", None)
    if shape is None or len(shape) != 2:
        raise InvalidMatrixError(
            "not-a-matrix", f"expected a 2-D sparse matrix, got shape "
            f"{shape!r}")
    if shape[0] != shape[1]:
        raise InvalidMatrixError(
            "non-square", f"matrix is {shape[0]}x{shape[1]}; the solver "
            f"pipeline requires a square system")
    if shape[0] == 0:
        raise InvalidMatrixError("empty", "matrix has zero rows")
    if not sp.issparse(A):
        raise InvalidMatrixError(
            "not-sparse", f"expected a scipy sparse matrix, got "
            f"{type(A).__name__}")
    data = A.tocoo(copy=False).data if A.nnz else np.empty(0)
    if data.size and not np.isfinite(data).all():
        bad = int(np.count_nonzero(~np.isfinite(data)))
        raise InvalidMatrixError(
            "non-finite", f"matrix holds {bad} NaN/Inf entr"
            f"{'y' if bad == 1 else 'ies'}")
    diag = A.diagonal()
    if (diag == 0).any():
        nzero = int(np.count_nonzero(diag == 0))
        raise InvalidMatrixError(
            "singular-diagonal",
            f"{nzero} zero/missing diagonal entr"
            f"{'y' if nzero == 1 else 'ies'}: structurally singular under "
            f"the no-pivoting factorization")


def validate_rhs(n: int, b) -> None:
    """Reject right-hand sides that cannot be solved against an ``n``-row
    matrix: wrong dimensionality, wrong row count, or NaN/Inf entries.
    Raises :class:`InvalidRhsError`; returns ``None`` when acceptable.
    """
    arr = np.asarray(b)
    if arr.ndim not in (1, 2):
        raise InvalidRhsError(
            "bad-ndim", f"RHS must be 1-D or 2-D, got ndim={arr.ndim}")
    if arr.shape[0] != n:
        raise InvalidRhsError(
            "shape-mismatch", f"b has {arr.shape[0]} rows, expected {n}")
    if arr.size and not np.isfinite(arr).all():
        bad = int(np.count_nonzero(~np.isfinite(arr)))
        raise InvalidRhsError(
            "non-finite", f"RHS holds {bad} NaN/Inf entr"
            f"{'y' if bad == 1 else 'ies'}")
