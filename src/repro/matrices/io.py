"""Minimal Matrix Market (coordinate, real, general) reader/writer.

Implemented from scratch so the repository has no I/O dependency beyond
numpy/scipy data structures; only the subset of the format the test suite
and examples need is supported.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

_HEADER = "%%MatrixMarket matrix coordinate real general"


def save_matrix_market(path: str, A: sp.spmatrix, comment: str = "") -> None:
    """Write a sparse matrix in Matrix Market coordinate format (1-based)."""
    A = sp.coo_matrix(A)
    with open(path, "w") as f:
        f.write(_HEADER + "\n")
        if comment:
            for line in comment.splitlines():
                f.write(f"%{line}\n")
        f.write(f"{A.shape[0]} {A.shape[1]} {A.nnz}\n")
        for i, j, v in zip(A.row, A.col, A.data):
            f.write(f"{i + 1} {j + 1} {v:.17g}\n")


def load_matrix_market(path: str) -> sp.csr_matrix:
    """Read a Matrix Market coordinate file written by :func:`save_matrix_market`.

    Also accepts the ``symmetric`` qualifier (the lower triangle is mirrored).
    """
    with open(path) as f:
        header = f.readline()
        if not header.startswith("%%MatrixMarket"):
            raise ValueError(f"{path}: not a MatrixMarket file")
        tokens = header.lower().split()
        if "coordinate" not in tokens or "real" not in tokens:
            raise ValueError(f"{path}: only 'coordinate real' is supported")
        symmetric = "symmetric" in tokens
        line = f.readline()
        while line.startswith("%"):
            line = f.readline()
        nrows, ncols, nnz = (int(t) for t in line.split())
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=np.float64)
        for k in range(nnz):
            parts = f.readline().split()
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = float(parts[2]) if len(parts) > 2 else 1.0
    A = sp.coo_matrix((vals, (rows, cols)), shape=(nrows, ncols))
    if symmetric:
        off = A.row != A.col
        A = A + sp.coo_matrix((A.data[off], (A.col[off], A.row[off])), shape=A.shape)
    return sp.csr_matrix(A)
