"""Legacy setup shim: keeps `pip install -e .` working offline (no wheel pkg)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Reproduction of 'Unified Communication Optimization "
                 "Strategies for Sparse Triangular Solver on CPU and GPU "
                 "Clusters' (SC '23)"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23", "scipy>=1.9"],
)
